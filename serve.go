package ams

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ams/internal/oracle"
	"ams/internal/serve"
	"ams/internal/service"
	"ams/internal/sim"
)

// Admission errors surfaced by Server. ErrQueueFull is the backpressure
// signal of the bounded queue; ErrServerClosed follows Close.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrServerClosed = serve.ErrClosed
)

// ServeConfig parameterizes a labeling server.
type ServeConfig struct {
	// Workers is the number of concurrent labeling workers. Each worker
	// owns a private clone of the agent's network (LabelBatch's cloning
	// rule) driving one scheduling policy.
	Workers int
	// Policy selects the per-worker scheduling policy; the zero value
	// means PolicyAlgorithm1, the server's historical default. With
	// PolicyAlgorithm2 (which requires MemoryGB) the server switches to
	// per-item parallel mode: one item's models run concurrently across
	// the pool under the shared accountant, matching sim.RunParallel
	// semantics.
	Policy Policy
	// DeadlineSec is the per-item scheduling budget, as in Label.
	DeadlineSec float64
	// MemoryGB, when positive, is the GPU memory budget shared by ALL
	// workers: Algorithm 2's joint constraint enforced globally, so the
	// sum of in-flight model footprints across the pool never exceeds
	// it. Workers block when the budget is saturated.
	MemoryGB float64
	// QueueCap bounds the admission queue (default 2*Workers). Submit
	// rejects with ErrQueueFull when it is saturated.
	QueueCap int
	// TimeScale is the real seconds slept per simulated second of model
	// execution (default 1.0). Small values run the full concurrent
	// machinery at test speed.
	TimeScale float64
	// StatsWindow is how many completed items Stats retains (default
	// 65536): a long-running server summarizes only the most recent
	// window, while ServeStats.Completed keeps the total count.
	StatsWindow int
}

// ServeTrace describes a Poisson arrival trace for Serve and
// SimulateServe.
type ServeTrace struct {
	ArrivalRateHz float64 // mean arrivals per second
	Items         int     // stream length
	Seed          uint64
}

// ServeStats reports a serving run in the same shape as the virtual-time
// simulation, plus the real server's concurrency counters. Times are on
// the simulated clock (wall-clock divided by TimeScale) so real and
// simulated runs compare field by field.
type ServeStats struct {
	Items           int     // items in the summarized window
	Completed       int64   // total completions (exceeds Items once the window wraps)
	AvgQueueWaitSec float64 // submit -> execution start
	AvgLatencySec   float64 // submit -> completion
	P95LatencySec   float64
	AvgRecall       float64 // over ground-truth-backed items only
	RecallItems     int     // items AvgRecall averaged over (external items have no recall)
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item

	PeakMemMB float64 // maximum simultaneous GPU reservation (real server)
	MemWaits  int64   // executions that blocked on the memory budget
	Rejected  int64   // submits rejected with ErrQueueFull
	// ResultsDropped counts Results-stream completions shed because the
	// subscriber fell more than a stats window behind (an abandoned
	// consumer never blocks labeling or grows memory unboundedly).
	ResultsDropped int64

	// AvgSelectSec is the real (unscaled) seconds per item spent inside
	// the policy's Next — the scheduling overhead of the paper's Table
	// III, dominated by Q-network forward passes (memoized per labeling
	// state since the Q-prediction cache). Zero for the virtual-time
	// sim, which models selection as free.
	AvgSelectSec float64
}

// Server is a running concurrent labeling server. Create one with
// NewServer, feed it with Submit or SubmitWait — held-out test images
// and externally ingested items alike — and stop it with Close (which
// drains queued items). Consume completions either per item through
// tickets or as a stream through Results.
type Server struct {
	sys    *System
	ingest *oracle.OnDemand // test store + dynamically ingested items
	inner  *serve.Server

	// ingested memoizes each external item's executor index so repeated
	// submissions of one item — including backoff-retries after
	// ErrQueueFull — reuse the slot instead of growing the executor per
	// attempt.
	mu       sync.Mutex
	ingested map[*oracle.ExternalItem]int

	resOnce sync.Once
	res     chan *Result
}

// ServeTicket tracks one submitted item to completion.
type ServeTicket struct {
	sys  *System
	ex   oracle.Executor
	item Item
	idx  int
	in   *serve.Ticket
}

// Done is closed when the item has been labeled.
func (t *ServeTicket) Done() <-chan struct{} { return t.in.Done() }

// Wait blocks until the item has been labeled — or ctx is cancelled,
// which abandons the wait (not the item: the server still finishes it)
// and returns ctx.Err().
func (t *ServeTicket) Wait(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-t.in.Done():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	res := t.in.Wait()
	return t.sys.buildResult(t.ex, t.idx, t.item, sim.SerialResult{
		Executed:  res.Executed,
		TimeMS:    res.ScheduleMS,
		Recall:    res.Recall,
		HasRecall: res.HasRecall,
	}), nil
}

// NewServer starts a concurrent labeling server driven by the agent. The
// server labels built-in test images from the precomputed store and
// ingested external items by running models on demand, under the same
// policies and budgets.
func (s *System) NewServer(agent *Agent, cfg ServeConfig) (*Server, error) {
	factory, policy, err := s.serveFactory(agent, cfg)
	if err != nil {
		return nil, err
	}
	ingest := oracle.NewOnDemand(s.Zoo, s.testStore)
	inner, err := serve.New(ingest, factory, serve.Config{
		Config: service.Config{
			Workers:     cfg.Workers,
			DeadlineSec: cfg.DeadlineSec,
		},
		QueueCap:       cfg.QueueCap,
		MemoryBudgetMB: cfg.MemoryGB * 1024,
		TimeScale:      cfg.TimeScale,
		StatsWindow:    cfg.StatsWindow,
		ItemParallel:   policy.parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return &Server{
		sys:      s,
		ingest:   ingest,
		inner:    inner,
		ingested: make(map[*oracle.ExternalItem]int),
	}, nil
}

// resolve maps an item onto the server's executor index, ingesting
// external content. One external item occupies one executor slot no
// matter how often it is submitted or how many admissions fail.
//
// Ingested slots live as long as the server: results (tickets, the
// Results stream) read an item's memoized outputs lazily, so slots are
// not reclaimed on completion. A server that ingests an unbounded
// external stream therefore grows with the distinct items it has
// accepted — restart servers on corpus boundaries, or reuse Items, to
// bound it (eviction of consumed items is a roadmap item).
func (sv *Server) resolve(item Item) (int, error) {
	ext, err := sv.sys.checkItem(item)
	if err != nil {
		return 0, err
	}
	if ext == nil {
		return item.image, nil
	}
	sv.mu.Lock()
	idx, ok := sv.ingested[ext]
	if !ok {
		idx = sv.ingest.Add(ext)
		sv.ingested[ext] = idx
	}
	sv.mu.Unlock()
	return idx, nil
}

// Submit admits one item without blocking; ErrQueueFull means the server
// is saturated and the caller should back off.
func (sv *Server) Submit(item Item) (*ServeTicket, error) {
	idx, err := sv.resolve(item)
	if err != nil {
		return nil, err
	}
	tk, err := sv.inner.Submit(idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, ex: sv.ingest, item: item, idx: idx, in: tk}, nil
}

// SubmitWait admits one item, blocking under backpressure until space
// frees or the context is cancelled (returning ctx.Err()).
func (sv *Server) SubmitWait(ctx context.Context, item Item) (*ServeTicket, error) {
	idx, err := sv.resolve(item)
	if err != nil {
		return nil, err
	}
	tk, err := sv.inner.SubmitWait(ctx, idx, item.id)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, ex: sv.ingest, item: item, idx: idx, in: tk}, nil
}

// SubmitImage is the deprecated index-based surface: it submits held-out
// image i exactly as Submit(TestItem(i)) does.
//
// Deprecated: use Submit with TestItem.
func (sv *Server) SubmitImage(image int) (*ServeTicket, error) {
	return sv.Submit(sv.sys.TestItem(image))
}

// Results subscribes to the server's completion stream: every item
// finished after the call is delivered in completion order, without the
// caller holding tickets. The channel closes after Close once all
// results are drained. Repeated calls share one subscription. Subscribe
// before submitting — earlier completions are not replayed. A slow or
// abandoned consumer never blocks labeling or Close: results buffer
// internally up to ServeConfig.StatsWindow undelivered entries, beyond
// which the oldest are dropped (ServeStats.ResultsDropped counts them).
// Like time.Tick, a subscription that is never drained holds its
// bounded buffer and two forwarding goroutines until the process exits;
// a consumer should read until the channel closes.
func (sv *Server) Results() <-chan *Result {
	sv.resOnce.Do(func() {
		inner := sv.inner.Results()
		ch := make(chan *Result)
		go func() {
			defer close(ch)
			for ir := range inner {
				item := Item{id: ir.Tag, image: ir.Image, valid: true}
				if ir.Image >= sv.sys.testStore.NumScenes() {
					// Ingested item: no test-split index to report.
					item.image = -1
				}
				ch <- sv.sys.buildResult(sv.ingest, ir.Image, item, sim.SerialResult{
					Executed:  ir.Executed,
					TimeMS:    ir.ScheduleMS,
					Recall:    ir.Recall,
					HasRecall: ir.HasRecall,
				})
			}
		}()
		sv.res = ch
	})
	return sv.res
}

// Stats summarizes the items completed so far.
func (sv *Server) Stats() ServeStats { return fromRunStats(sv.inner.Stats()) }

// Close stops admission, drains the queue, and waits for in-flight items.
func (sv *Server) Close() error { return sv.inner.Close() }

// Serve replays a Poisson arrival trace through a fresh server, pulling
// items from src — any SceneSource; nil means the built-in test split,
// cycled — and returns its statistics: the real-time counterpart of
// SimulateServe. The replay ends after trace.Items arrivals or when the
// source is exhausted; cancelling ctx stops admission early and returns
// the statistics of the items completed, alongside ctx.Err().
func (s *System) Serve(ctx context.Context, agent *Agent, cfg ServeConfig, trace ServeTrace, src SceneSource) (ServeStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace.ArrivalRateHz <= 0 || trace.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: serve needs a positive arrival rate and item count, got %v Hz / %d items",
			trace.ArrivalRateHz, trace.Items)
	}
	if src == nil {
		src = s.TestSplitSource()
	}
	if cfg.StatsWindow == 0 {
		cfg.StatsWindow = trace.Items // summarize the whole trace
	}
	srv, err := s.NewServer(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	scale := cfg.TimeScale
	if scale == 0 {
		scale = 1.0 // the server's own default; keep arrival pacing on it
	}
	start := time.Now()
	arrivals := service.Arrivals(trace.Items, trace.ArrivalRateHz, trace.Seed)
	var submitErr error
	for _, at := range arrivals {
		item, ok := src.Next()
		if !ok {
			break // source exhausted: serve what arrived
		}
		if d := time.Duration(at*scale*float64(time.Second)) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			submitErr = ctx.Err()
			break
		}
		if _, err := srv.SubmitWait(ctx, item); err != nil {
			submitErr = err
			break
		}
	}
	if err := srv.Close(); err != nil && submitErr == nil {
		submitErr = err
	}
	return srv.Stats(), submitErr
}

// SimulateServe runs the virtual-time discrete-event simulation of the
// same workload — same Config and policy wiring as Serve, no real
// concurrency or sleeping — so the two can be compared side by side.
// The simulation replays the built-in test split (virtual time cannot
// consume a live external source); the memory budget and queue bound do
// not apply: the sim models an unbounded FIFO queue with serial per-item
// execution.
func (s *System) SimulateServe(agent *Agent, cfg ServeConfig, trace ServeTrace) (ServeStats, error) {
	factory, _, err := s.serveFactory(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	svcCfg := s.traceConfig(cfg, trace)
	if svcCfg.Workers <= 0 {
		return ServeStats{}, fmt.Errorf("ams: need at least one worker, got %d", svcCfg.Workers)
	}
	if svcCfg.ArrivalRateHz <= 0 || svcCfg.DeadlineSec <= 0 || svcCfg.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: invalid serve trace %+v", svcCfg)
	}
	st := service.Run(s.testStore, factory, svcCfg)
	return fromRunStats(serve.RunStats{Stats: st, Completed: int64(st.Items)}), nil
}

// traceConfig merges the server and trace parameters into the shared
// service.Config.
func (s *System) traceConfig(cfg ServeConfig, trace ServeTrace) service.Config {
	return service.Config{
		Workers:       cfg.Workers,
		ArrivalRateHz: trace.ArrivalRateHz,
		DeadlineSec:   cfg.DeadlineSec,
		Items:         trace.Items,
		Seed:          trace.Seed,
	}
}

// serveFactory resolves cfg.Policy (defaulting to Algorithm 1, the
// server's historical behavior) and builds the per-worker policy
// factory: each worker gets a private instantiation — and through it a
// private clone of the agent's network, LabelBatch's cloning rule.
func (s *System) serveFactory(agent *Agent, cfg ServeConfig) (service.PolicyFactory, Policy, error) {
	policy := cfg.Policy
	if !policy.valid() {
		policy = PolicyAlgorithm1
	}
	if policy.parallel && cfg.MemoryGB <= 0 {
		return nil, Policy{}, fmt.Errorf("ams: policy %q serves items in parallel and requires a memory budget", policy.Name())
	}
	// Validate up front so configuration errors (e.g. a missing agent)
	// surface before any worker starts.
	if err := policy.check(agent); err != nil {
		return nil, Policy{}, err
	}
	return func(worker int) sim.Policy {
		p, err := policy.instantiate(s, agent, uint64(worker))
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return p
	}, policy, nil
}

func fromRunStats(rs serve.RunStats) ServeStats {
	return ServeStats{
		Items:           rs.Items,
		Completed:       rs.Completed,
		AvgQueueWaitSec: rs.AvgQueueWaitSec,
		AvgLatencySec:   rs.AvgLatencySec,
		P95LatencySec:   rs.P95LatencySec,
		AvgRecall:       rs.AvgRecall,
		RecallItems:     rs.RecallItems,
		ThroughputHz:    rs.ThroughputHz,
		Utilization:     rs.Utilization,
		HorizonSec:      rs.HorizonSec,
		PeakMemMB:       rs.PeakMemMB,
		MemWaits:        rs.MemWaits,
		Rejected:        rs.Rejected,
		ResultsDropped:  rs.ResultsDropped,
		AvgSelectSec:    rs.AvgSelectSec,
	}
}

package ams

import (
	"context"
	"fmt"

	"ams/internal/serve"
	"ams/internal/service"
	"ams/internal/sim"
)

// Admission errors surfaced by Server. ErrQueueFull is the backpressure
// signal of the bounded queue; ErrServerClosed follows Close.
var (
	ErrQueueFull    = serve.ErrQueueFull
	ErrServerClosed = serve.ErrClosed
)

// ServeConfig parameterizes a labeling server over the system's held-out
// images.
type ServeConfig struct {
	// Workers is the number of concurrent labeling workers. Each worker
	// owns a private clone of the agent's network (LabelBatch's cloning
	// rule) driving one scheduling policy.
	Workers int
	// Policy selects the per-worker scheduling policy; the zero value
	// means PolicyAlgorithm1, the server's historical default. With
	// PolicyAlgorithm2 (which requires MemoryGB) the server switches to
	// per-item parallel mode: one item's models run concurrently across
	// the pool under the shared accountant, matching sim.RunParallel
	// semantics.
	Policy Policy
	// DeadlineSec is the per-item scheduling budget, as in Label.
	DeadlineSec float64
	// MemoryGB, when positive, is the GPU memory budget shared by ALL
	// workers: Algorithm 2's joint constraint enforced globally, so the
	// sum of in-flight model footprints across the pool never exceeds
	// it. Workers block when the budget is saturated.
	MemoryGB float64
	// QueueCap bounds the admission queue (default 2*Workers). Submit
	// rejects with ErrQueueFull when it is saturated.
	QueueCap int
	// TimeScale is the real seconds slept per simulated second of model
	// execution (default 1.0). Small values run the full concurrent
	// machinery at test speed.
	TimeScale float64
	// StatsWindow is how many completed items Stats retains (default
	// 65536): a long-running server summarizes only the most recent
	// window, while ServeStats.Completed keeps the total count.
	StatsWindow int
}

// ServeTrace describes a Poisson arrival trace for Serve and
// SimulateServe.
type ServeTrace struct {
	ArrivalRateHz float64 // mean arrivals per second
	Items         int     // stream length; images cycle through the test split
	Seed          uint64
}

// ServeStats reports a serving run in the same shape as the virtual-time
// simulation, plus the real server's concurrency counters. Times are on
// the simulated clock (wall-clock divided by TimeScale) so real and
// simulated runs compare field by field.
type ServeStats struct {
	Items           int     // items in the summarized window
	Completed       int64   // total completions (exceeds Items once the window wraps)
	AvgQueueWaitSec float64 // submit -> execution start
	AvgLatencySec   float64 // submit -> completion
	P95LatencySec   float64
	AvgRecall       float64
	ThroughputHz    float64 // completions per simulated second
	Utilization     float64 // busy worker-time / (workers * horizon)
	HorizonSec      float64 // completion time of the last item

	PeakMemMB float64 // maximum simultaneous GPU reservation (real server)
	MemWaits  int64   // executions that blocked on the memory budget
	Rejected  int64   // submits rejected with ErrQueueFull

	// AvgSelectSec is the real (unscaled) seconds per item spent inside
	// the policy's Next — the scheduling overhead of the paper's Table
	// III, dominated by Q-network forward passes. Zero for the
	// virtual-time sim, which models selection as free.
	AvgSelectSec float64
}

// Server is a running concurrent labeling server over the system's
// held-out images. Create one with NewServer, feed it with Submit or
// SubmitWait, and stop it with Close (which drains queued items).
type Server struct {
	sys   *System
	inner *serve.Server
}

// ServeTicket tracks one submitted image to completion.
type ServeTicket struct {
	sys   *System
	inner *serve.Ticket
}

// Done is closed when the image has been labeled.
func (t *ServeTicket) Done() <-chan struct{} { return t.inner.Done() }

// Wait blocks until the image has been labeled and returns the same
// Result shape Label produces.
func (t *ServeTicket) Wait() *Result {
	res := t.inner.Wait()
	return t.sys.buildResult(res.Image, sim.SerialResult{
		Executed: res.Executed,
		TimeMS:   res.ScheduleMS,
		Recall:   res.Recall,
	})
}

// NewServer starts a concurrent labeling server driven by the agent.
func (s *System) NewServer(agent *Agent, cfg ServeConfig) (*Server, error) {
	factory, policy, err := s.serveFactory(agent, cfg)
	if err != nil {
		return nil, err
	}
	inner, err := serve.New(s.testStore, factory, serve.Config{
		Config: service.Config{
			Workers:     cfg.Workers,
			DeadlineSec: cfg.DeadlineSec,
		},
		QueueCap:       cfg.QueueCap,
		MemoryBudgetMB: cfg.MemoryGB * 1024,
		TimeScale:      cfg.TimeScale,
		StatsWindow:    cfg.StatsWindow,
		ItemParallel:   policy.parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return &Server{sys: s, inner: inner}, nil
}

// Submit admits one held-out image without blocking; ErrQueueFull means
// the server is saturated and the caller should back off.
func (sv *Server) Submit(image int) (*ServeTicket, error) {
	tk, err := sv.inner.Submit(image)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, inner: tk}, nil
}

// SubmitWait admits one image, blocking under backpressure until space
// frees or the context is cancelled.
func (sv *Server) SubmitWait(ctx context.Context, image int) (*ServeTicket, error) {
	tk, err := sv.inner.SubmitWait(ctx, image)
	if err != nil {
		return nil, err
	}
	return &ServeTicket{sys: sv.sys, inner: tk}, nil
}

// Stats summarizes the items completed so far.
func (sv *Server) Stats() ServeStats { return fromRunStats(sv.inner.Stats()) }

// Close stops admission, drains the queue, and waits for in-flight items.
func (sv *Server) Close() error { return sv.inner.Close() }

// Serve replays a Poisson arrival trace through a fresh server and
// returns its statistics — the real-time counterpart of SimulateServe.
func (s *System) Serve(agent *Agent, cfg ServeConfig, trace ServeTrace) (ServeStats, error) {
	factory, policy, err := s.serveFactory(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	rs, err := serve.Replay(s.testStore, factory, serve.Config{
		Config:         s.traceConfig(cfg, trace),
		QueueCap:       cfg.QueueCap,
		MemoryBudgetMB: cfg.MemoryGB * 1024,
		TimeScale:      cfg.TimeScale,
		StatsWindow:    cfg.StatsWindow,
		ItemParallel:   policy.parallel,
	})
	if err != nil {
		return ServeStats{}, fmt.Errorf("ams: %w", err)
	}
	return fromRunStats(rs), nil
}

// SimulateServe runs the virtual-time discrete-event simulation of the
// same workload — same Config and policy wiring as Serve, no real
// concurrency or sleeping — so the two can be compared side by side.
// The memory budget and queue bound do not apply: the sim models an
// unbounded FIFO queue with serial per-item execution.
func (s *System) SimulateServe(agent *Agent, cfg ServeConfig, trace ServeTrace) (ServeStats, error) {
	factory, _, err := s.serveFactory(agent, cfg)
	if err != nil {
		return ServeStats{}, err
	}
	svcCfg := s.traceConfig(cfg, trace)
	if svcCfg.Workers <= 0 {
		return ServeStats{}, fmt.Errorf("ams: need at least one worker, got %d", svcCfg.Workers)
	}
	if svcCfg.ArrivalRateHz <= 0 || svcCfg.DeadlineSec <= 0 || svcCfg.Items <= 0 {
		return ServeStats{}, fmt.Errorf("ams: invalid serve trace %+v", svcCfg)
	}
	st := service.Run(s.testStore, factory, svcCfg)
	return fromRunStats(serve.RunStats{Stats: st, Completed: int64(st.Items)}), nil
}

// traceConfig merges the server and trace parameters into the shared
// service.Config.
func (s *System) traceConfig(cfg ServeConfig, trace ServeTrace) service.Config {
	return service.Config{
		Workers:       cfg.Workers,
		ArrivalRateHz: trace.ArrivalRateHz,
		DeadlineSec:   cfg.DeadlineSec,
		Items:         trace.Items,
		Seed:          trace.Seed,
	}
}

// serveFactory resolves cfg.Policy (defaulting to Algorithm 1, the
// server's historical behavior) and builds the per-worker policy
// factory: each worker gets a private instantiation — and through it a
// private clone of the agent's network, LabelBatch's cloning rule.
func (s *System) serveFactory(agent *Agent, cfg ServeConfig) (service.PolicyFactory, Policy, error) {
	policy := cfg.Policy
	if !policy.valid() {
		policy = PolicyAlgorithm1
	}
	if policy.parallel && cfg.MemoryGB <= 0 {
		return nil, Policy{}, fmt.Errorf("ams: policy %q serves items in parallel and requires a memory budget", policy.Name())
	}
	// Validate up front so configuration errors (e.g. a missing agent)
	// surface before any worker starts.
	if err := policy.check(agent); err != nil {
		return nil, Policy{}, err
	}
	return func(worker int) sim.Policy {
		p, err := policy.instantiate(s, agent, uint64(worker))
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return p
	}, policy, nil
}

func fromRunStats(rs serve.RunStats) ServeStats {
	return ServeStats{
		Items:           rs.Items,
		Completed:       rs.Completed,
		AvgQueueWaitSec: rs.AvgQueueWaitSec,
		AvgLatencySec:   rs.AvgLatencySec,
		P95LatencySec:   rs.P95LatencySec,
		AvgRecall:       rs.AvgRecall,
		ThroughputHz:    rs.ThroughputHz,
		Utilization:     rs.Utilization,
		HorizonSec:      rs.HorizonSec,
		PeakMemMB:       rs.PeakMemMB,
		MemWaits:        rs.MemWaits,
		Rejected:        rs.Rejected,
		AvgSelectSec:    rs.AvgSelectSec,
	}
}

package ams

import (
	"fmt"
	"io"
)

// WriteSummary renders the run's human-readable summary — the block
// cmd/amsserve and examples/labelserver print after a trace. It is the
// one shared renderer for ServeStats so the binaries cannot drift into
// reporting the same run differently: core latency/throughput lines
// always, then each optional subsystem (memory budget, batching,
// predictor cache, sharding) only when the run exercised it.
// memBudgetMB annotates the peak-memory line with the configured budget
// (0 omits the annotation).
func (s ServeStats) WriteSummary(w io.Writer, name string, memBudgetMB float64) {
	fmt.Fprintf(w, "%s:\n", name)
	fmt.Fprintf(w, "  %-18s %8d\n", "items", s.Items)
	fmt.Fprintf(w, "  %-18s %8.3f s\n", "avg queue wait", s.AvgQueueWaitSec)
	fmt.Fprintf(w, "  %-18s %8.3f s\n", "avg latency", s.AvgLatencySec)
	fmt.Fprintf(w, "  %-18s %8.3f s\n", "p95 latency", s.P95LatencySec)
	if s.RecallItems > 0 {
		fmt.Fprintf(w, "  %-18s %8.3f (over %d ground-truth items)\n", "avg recall", s.AvgRecall, s.RecallItems)
	} else {
		fmt.Fprintf(w, "  %-18s %8s (external items: no ground truth)\n", "avg recall", "n/a")
	}
	fmt.Fprintf(w, "  %-18s %8.2f /s\n", "throughput", s.ThroughputHz)
	fmt.Fprintf(w, "  %-18s %8.1f %%\n", "utilization", 100*s.Utilization)
	fmt.Fprintf(w, "  %-18s %8.2f s\n", "horizon", s.HorizonSec)
	// Shedding counters: admissions refused by the bounded queue and
	// Results-stream entries dropped behind a lagging consumer.
	fmt.Fprintf(w, "  %-18s %8d rejected, %d results dropped\n", "shedding", s.Rejected, s.ResultsDropped)
	if s.AvgSelectSec > 0 {
		// Real (unscaled) CPU time inside the policy per item — the
		// paper's Table III selection overhead.
		fmt.Fprintf(w, "  %-18s %8.3f ms (real, unscaled)\n", "avg select/item", s.AvgSelectSec*1000)
	}
	if s.PeakMemMB > 0 {
		if memBudgetMB > 0 {
			fmt.Fprintf(w, "  %-18s %8.0f MB (budget %.0f MB, %d blocked reservations)\n",
				"peak GPU memory", s.PeakMemMB, memBudgetMB, s.MemWaits)
		} else {
			fmt.Fprintf(w, "  %-18s %8.0f MB (%d blocked reservations)\n",
				"peak GPU memory", s.PeakMemMB, s.MemWaits)
		}
	}
	if s.BatchedRequests > 0 {
		fmt.Fprintf(w, "  %-18s %8d requests in %d batches (largest %d)\n",
			"batching", s.BatchedRequests, s.Batches, s.LargestBatch)
		fmt.Fprintf(w, "  %-18s %8.0f GPU-ms, %.0f MB of reservations\n",
			"coalesced away", s.BatchSavedGPUMS, s.BatchSavedMemMB)
	}
	if hm := s.PredCacheHits + s.PredCacheMisses; hm > 0 {
		fmt.Fprintf(w, "  %-18s %8.1f %% hits (%d lookups, %d states cached)\n",
			"predictor cache", 100*float64(s.PredCacheHits)/float64(hm), hm, s.PredCacheEntries)
	}
	if s.Shards > 1 {
		fmt.Fprintf(w, "  %-18s %8d shards, %d steals\n", "sharding", s.Shards, s.Steals)
		for _, ps := range s.PerShard {
			fmt.Fprintf(w, "    shard %d: %d items, %.2f /s, %.1f %% util, %d assigned, %d stolen-in, %d stolen-out, %d shed\n",
				ps.Shard, ps.Items, ps.ThroughputHz, 100*ps.Utilization, ps.Assigned, ps.Steals, ps.StolenFrom, ps.Rejected)
		}
	}
}

// WriteCriticalPath renders one item's critical-path attribution — the
// shared block cmd/amsserve and examples/labelserver print for the
// slowest traced item, so both binaries explain latency identically.
// Silent when the trace carries no spans (telemetry off).
func (t DecisionTrace) WriteCriticalPath(w io.Writer, title string) {
	stages := t.CriticalPath()
	if len(stages) == 0 {
		return
	}
	label := t.Tag
	if label == "" {
		label = fmt.Sprintf("item %d", t.Item)
	}
	fmt.Fprintf(w, "%s (%s", title, label)
	if t.Stolen {
		fmt.Fprintf(w, ", stolen shard %d → %d", t.Home, t.Shard)
	}
	fmt.Fprintf(w, "):\n")
	var totalMS float64
	for _, st := range stages {
		totalMS += st.VirtMS
	}
	fmt.Fprintf(w, "  %-18s %8.1f ms simulated end to end\n", "total", totalMS)
	for _, st := range stages {
		name := st.Name
		if st.Model >= 0 {
			name = fmt.Sprintf("%s[m%d]", st.Name, st.Model)
		}
		fmt.Fprintf(w, "  %-18s %8.1f ms (%5.1f %%)\n", name, st.VirtMS, 100*st.Frac)
	}
}

// WriteSummary renders the corpus retention block both binaries print:
// how many ingested items the corpus tracks, how many still hold
// memory, and what the journal costs.
func (cs CorpusStats) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "corpus:\n")
	fmt.Fprintf(w, "  %-18s %8d (%d committed)\n", "items", cs.Items, cs.Committed)
	fmt.Fprintf(w, "  %-18s %8d\n", "resident", cs.Resident)
	fmt.Fprintf(w, "  %-18s %8d\n", "evicted", cs.Evicted)
	fmt.Fprintf(w, "  %-18s %8d B in %d records (%d snapshots, %d segments)\n",
		"journal", cs.JournalBytes, cs.JournalRecords, cs.Snapshots, cs.Segments)
	if cs.Syncs > 0 || cs.Unsynced > 0 {
		fmt.Fprintf(w, "  %-18s %8d group commits (%d records unsynced)\n", "fsync", cs.Syncs, cs.Unsynced)
	}
}

package ams

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeExport mirrors the Chrome trace-event JSON the span tracer
// exports; events keep their raw maps so tests can assert on the exact
// keys Perfetto requires.
type chromeExport struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

func parseChrome(t *testing.T, data []byte) chromeExport {
	t.Helper()
	var doc chromeExport
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace event %d missing required key %q: %v", i, key, ev)
			}
		}
	}
	return doc
}

// TestSpanTraceEndToEnd drives a sharded, work-stealing, batched server
// with the full span stack on — sized tracer ring, SLO burn accounting —
// and checks the PR-10 surfaces end to end: per-item span trees with a
// rooted lifecycle, critical-path attribution, the Chrome/Perfetto
// export (slices, metadata, batch-lane fan-in), and the ams_slo_* /
// ams_trace_* series in the telemetry snapshot.
func TestSpanTraceEndToEnd(t *testing.T) {
	const items = 10
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers:       2,
		Shards:        2,
		ShardSteal:    true,
		DeadlineSec:   0.5,
		MemoryGB:      8,
		TimeScale:     0.001,
		BatchSize:     2,
		Telemetry:     true,
		TraceCapacity: 64,
		SLOs:          []string{"p99<400ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < items; i++ {
		tk, err := srv.SubmitWait(bg, testSys.TestItem(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(bg); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Every resident trace carries a rooted span tree: span 0 is the
	// "item" root, children nest inside it, and an execution stage
	// (direct or batched) plus the commit appear under it.
	traces := srv.Traces(items)
	if len(traces) != items {
		t.Fatalf("Traces(%d) returned %d", items, len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) == 0 {
			t.Fatalf("item %d committed without spans", tr.Item)
		}
		root := tr.Spans[0]
		if root.ID != 0 || root.Parent != -1 || root.Name != "item" {
			t.Fatalf("item %d root span malformed: %+v", tr.Item, root)
		}
		if root.EndUS < root.StartUS {
			t.Fatalf("item %d root span never closed: %+v", tr.Item, root)
		}
		var sawExec, sawCommit bool
		for _, sp := range tr.Spans[1:] {
			if sp.Parent < 0 || sp.Parent >= len(tr.Spans) {
				t.Fatalf("item %d span %d has dangling parent %d", tr.Item, sp.ID, sp.Parent)
			}
			switch sp.Name {
			case "exec":
				sawExec = true
				if sp.Batch == 0 {
					t.Fatalf("item %d exec span on a batched server lost its batch id: %+v", tr.Item, sp)
				}
			case "commit":
				sawCommit = true
			}
		}
		if !sawExec || !sawCommit {
			t.Fatalf("item %d span tree missing stages (exec=%v commit=%v): %+v",
				tr.Item, sawExec, sawCommit, tr.Spans)
		}
	}

	// Critical-path attribution on the slowest item: stages conserve the
	// root duration and their fractions cover it.
	slow, ok := srv.SlowestTrace()
	if !ok {
		t.Fatal("SlowestTrace found no spanned trace")
	}
	stages := slow.CriticalPath()
	if len(stages) == 0 {
		t.Fatal("CriticalPath returned no stages")
	}
	var total int64
	var frac float64
	for _, st := range stages {
		total += st.WallUS
		frac += st.Frac
	}
	rootDur := slow.Spans[0].EndUS - slow.Spans[0].StartUS
	if total != rootDur {
		t.Fatalf("critical path wall time %dµs != root span %dµs", total, rootDur)
	}
	if frac < 0.999 || frac > 1.001 {
		t.Fatalf("critical path fractions sum to %g, want 1", frac)
	}
	var sb strings.Builder
	slow.WriteCriticalPath(&sb, "slowest item")
	if out := sb.String(); !strings.Contains(out, "slowest item") || !strings.Contains(out, "exec") {
		t.Fatalf("WriteCriticalPath rendering incomplete:\n%s", out)
	}

	// The Chrome export: valid Perfetto JSON, per-span "X" slices, and a
	// synthesized batch-exec slice on a batch-lane process.
	sb.Reset()
	if err := srv.WriteChromeTrace(&sb, 0); err != nil {
		t.Fatal(err)
	}
	doc := parseChrome(t, []byte(sb.String()))
	var slices, batchExec int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			slices++
			if strings.HasPrefix(ev["name"].(string), "batch-exec") {
				batchExec++
				if ev["pid"].(float64) < 1000 {
					t.Fatalf("batch-exec slice not on a batch-lane process: %v", ev)
				}
			}
		}
	}
	if slices < items {
		t.Fatalf("chrome export has %d slices for %d items", slices, items)
	}
	if batchExec == 0 {
		t.Fatal("batched server exported no batch-exec slice")
	}

	// SLO accounting: both objectives (implicit deadline + configured
	// p99) expose good/bad counters and burn gauges per window, and the
	// trace ring reports its configured capacity.
	byKey := map[string]TelemetryMetric{}
	for _, m := range srv.Stats().Telemetry {
		byKey[m.Name+"|"+m.Labels["slo"]+"|"+m.Labels["window"]] = m
	}
	for _, slo := range []string{"deadline", "p99"} {
		good := byKey["ams_slo_good_total|"+slo+"|"]
		bad := byKey["ams_slo_bad_total|"+slo+"|"]
		if int64(good.Value+bad.Value) != items {
			t.Fatalf("slo %q accounted %v good + %v bad, want %d total",
				slo, good.Value, bad.Value, items)
		}
		for _, win := range []string{"300s", "3600s"} {
			if _, ok := byKey["ams_slo_burn_rate|"+slo+"|"+win]; !ok {
				t.Errorf("missing ams_slo_burn_rate{slo=%q,window=%q}", slo, win)
			}
		}
		if _, ok := byKey["ams_slo_quantile_seconds|"+slo+"|"]; !ok {
			t.Errorf("missing ams_slo_quantile_seconds{slo=%q}", slo)
		}
	}
	if m := byKey["ams_trace_capacity||"]; m.Value != 64 {
		t.Fatalf("ams_trace_capacity = %v, want 64", m.Value)
	}
}

// TestServeTraceOutDump: a server configured with TraceOut writes the
// span-trace ring as loadable Chrome JSON when it closes.
func TestServeTraceOutDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001, TraceOut: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tk, err := srv.SubmitWait(bg, testSys.TestItem(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(bg); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("TraceOut file not written: %v", err)
	}
	doc := parseChrome(t, data)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("TraceOut dump has no events")
	}
}

// TestServeFlightRecorderShedStorm induces the anomaly the flight
// recorder exists for: an open-loop overload against a one-worker,
// one-slot queue sheds most arrivals, the shed-rate trigger fires, and
// an atomically-written JSON bundle — metrics plus the recent trace
// ring, captured before the anomaly — lands in FlightDir.
func TestServeFlightRecorderShedStorm(t *testing.T) {
	dir := t.TempDir()
	cfg := ServeConfig{
		Workers:     1,
		QueueCap:    1,
		DeadlineSec: 2.0,
		MemoryGB:    8,
		TimeScale:   0.05,
		FlightDir:   dir,
	}
	// 200 arrivals at 10 Hz simulated = 20 simulated seconds = one
	// second of wall at 0.05×: long enough for the recorder's 250 ms
	// polls to take a baseline and then see the storm (Close's final
	// poll is the backstop), fast enough to stay a unit test.
	trace := ServeTrace{ArrivalRateHz: 10, Items: 200, Seed: 1, OpenLoop: true}
	st, err := testSys.Serve(bg, testAgent, cfg, trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("open-loop overload shed nothing: the storm never happened")
	}
	bundles, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatalf("flight recorder wrote no bundle despite %d sheds", st.Rejected)
	}
	data, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Trigger  string            `json:"trigger"`
		Detail   string            `json:"detail"`
		WallTime string            `json:"wall_time"`
		Metrics  []TelemetryMetric `json:"metrics"`
		Traces   []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatalf("flight bundle is not valid JSON: %v\n%s", err, data)
	}
	if bundle.Trigger == "" || bundle.WallTime == "" {
		t.Fatalf("flight bundle missing trigger metadata: %s", data)
	}
	if len(bundle.Metrics) == 0 {
		t.Fatalf("flight bundle carries no metric snapshot: %s", data)
	}
	sawShed := false
	for _, m := range bundle.Metrics {
		if m.Name == "ams_items_shed_total" || m.Name == "ams_flight_dumps_total" {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("flight bundle snapshot missing serving counters: %s", data)
	}
}

// Surveillance: a monitoring pipeline where face detection must be
// prioritized (the paper's §VI-E scenario) and models share a bounded
// GPU, exercising the theta priority parameter and Algorithm 2's
// deadline+memory packing.
package main

import (
	"context"
	"fmt"
	"log"

	"ams"
)

const faceModel = "facedet-mtcnn"

func main() {
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: 400, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}

	// Train two agents: one neutral, one with the face detector's reward
	// priority boosted 10x so faces surface with minimal delay.
	neutral, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	prioritized, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 33,
		Priorities: map[string]float64{faceModel: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Measure how early the face detector runs under each agent.
	n := sys.NumTestImages()
	avgPos := func(a *ams.Agent) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			res, err := sys.Label(context.Background(), a, sys.TestItem(i), ams.Budget{})
			if err != nil {
				log.Fatal(err)
			}
			pos := len(res.ModelsRun) + 1
			for j, name := range res.ModelsRun {
				if name == faceModel {
					pos = j + 1
					break
				}
			}
			sum += float64(pos)
		}
		return sum / float64(n)
	}
	fmt.Printf("avg position of %s in the schedule:\n", faceModel)
	fmt.Printf("  neutral agent (theta=1):      %.1f\n", avgPos(neutral))
	fmt.Printf("  prioritized agent (theta=10): %.1f\n", avgPos(prioritized))

	// Frame processing under a wall-clock deadline with a shared 8 GB
	// GPU: Algorithm 2 packs models in parallel and releases memory as
	// executions finish.
	fmt.Println("\nper-frame labeling, 0.8s deadline, 8GB GPU (Algorithm 2):")
	var recall, makespan float64
	frames := 20
	if frames > n {
		frames = n
	}
	for i := 0; i < frames; i++ {
		res, err := sys.Label(context.Background(), prioritized, sys.TestItem(i), ams.Budget{DeadlineSec: 0.8, MemoryGB: 8})
		if err != nil {
			log.Fatal(err)
		}
		recall += res.Recall
		makespan += res.TimeSec
	}
	fmt.Printf("  %d frames: avg recall %.3f, avg makespan %.2fs (serial no-policy: %.2fs)\n",
		frames, recall/float64(frames), makespan/float64(frames), sys.NoPolicyTimeSec())
}

// Datatrading: the paper's data-market motivation — "the richer the
// label of a data set, the higher the price". A seller labels a corpus
// under a fixed compute budget; richer per-image annotation tiers fetch
// higher prices, so the scheduler's job is to maximize catalogue value
// per GPU-second. Compares the agent against the random policy at equal
// budgets.
package main

import (
	"context"
	"fmt"
	"log"

	"ams"
)

// price tiers by number of distinct valuable labels on an image.
func tier(valuable int) (string, float64) {
	switch {
	case valuable >= 12:
		return "premium", 1.00
	case valuable >= 6:
		return "standard", 0.50
	case valuable >= 2:
		return "basic", 0.20
	default:
		return "unsellable", 0
	}
}

func main() {
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetVOC, NumImages: 400, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}

	n := sys.NumTestImages()
	fmt.Printf("pricing a %d-image catalogue under per-image compute budgets\n\n", n)
	fmt.Printf("%-10s  %-22s  %-22s\n", "budget(s)", "agent  (value, tiers)", "random (value, tiers)")
	for _, budget := range []float64{0.5, 1.0, 2.0} {
		type book struct {
			value float64
			tiers map[string]int
		}
		price := func(label func(i int) (*ams.Result, error)) book {
			b := book{tiers: map[string]int{}}
			for i := 0; i < n; i++ {
				res, err := label(i)
				if err != nil {
					log.Fatal(err)
				}
				name, p := tier(len(res.ValuableLabels()))
				b.tiers[name]++
				b.value += p
			}
			return b
		}
		ab := price(func(i int) (*ams.Result, error) {
			return sys.Label(context.Background(), agent, sys.TestItem(i), ams.Budget{DeadlineSec: budget})
		})
		rb := price(func(i int) (*ams.Result, error) {
			return sys.LabelRandom(context.Background(), sys.TestItem(i), ams.Budget{DeadlineSec: budget}, uint64(i))
		})
		fmt.Printf("%-10.1f  $%-6.2f p%d/s%d/b%d       $%-6.2f p%d/s%d/b%d\n",
			budget,
			ab.value, ab.tiers["premium"], ab.tiers["standard"], ab.tiers["basic"],
			rb.value, rb.tiers["premium"], rb.tiers["standard"], rb.tiers["basic"])
	}
	fmt.Println("\nsame GPU-seconds, richer catalogue: scheduling is sell-side revenue")
}

// Videostream: labeling a correlated (video-like) stream where content
// arrives in chunks. For such data the paper's introduction observes that
// a simple explore–exploit policy works extremely well: probe all models
// at the head of each chunk, then run only the discovered valuable subset.
//
// The second half feeds a live "camera feed" of externally generated
// frames — items the oracle has never precomputed — through the real
// concurrent server's ingestion door, consuming completions as a stream.
package main

import (
	"context"
	"fmt"
	"log"

	"ams"
)

func main() {
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetStanford, NumImages: 300, Seed: 55})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("explore-exploit on a chunked stream (chunk = video segment)")
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s\n",
		"chunkLen", "exploreN", "avg t (s)", "saved", "recall")
	for _, cfg := range []struct{ chunk, explore int }{
		{5, 1}, {10, 1}, {20, 1}, {20, 2},
	} {
		res, err := sys.LabelChunkedStream(300, cfg.chunk, cfg.explore)
		if err != nil {
			log.Fatal(err)
		}
		saved := fmt.Sprintf("%.1f%%", 100*res.TimeSavedFrac)
		fmt.Printf("%-10d %-10d %-12.2f %-12s %-10.3f\n",
			cfg.chunk, cfg.explore, res.AvgTimeSec, saved, res.AvgRecall)
	}
	fmt.Printf("\nno-policy reference: %.2fs per frame\n", sys.NoPolicyTimeSec())
	fmt.Println("longer chunks amortize exploration; more exploration raises recall")

	// --- Live ingestion: external frames through the real server --------
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 6, Hidden: []int{96}, Seed: 55,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := sys.NewServer(agent, ams.ServeConfig{
		Workers:     2,
		DeadlineSec: 0.5,
		TimeScale:   0.001, // replay fast; production would use 1.0
	})
	if err != nil {
		log.Fatal(err)
	}
	results := srv.Results() // subscribe before submitting

	// Each generated item stands in for a frame arriving off-camera:
	// content the library did not synthesize for itself, labeled through
	// the same scheduling machinery, on demand.
	frames := sys.GenerateItems(24, 1234)
	go func() {
		defer srv.Close() // closing ends the Results stream below
		for _, frame := range frames {
			if _, err := srv.SubmitWait(context.Background(), frame); err != nil {
				log.Printf("submit: %v", err)
				return
			}
		}
	}()

	fmt.Printf("\nstreaming %d external frames through the server:\n", len(frames))
	var n, models int
	var timeSec float64
	for res := range results {
		n++
		models += len(res.ModelsRun)
		timeSec += res.TimeSec
		if n <= 3 {
			labels := res.ValuableLabels()
			show := len(labels)
			if show > 3 {
				show = 3
			}
			names := make([]string, 0, show)
			for _, l := range labels[:show] {
				names = append(names, l.Name)
			}
			fmt.Printf("  %-12s %2d models, %.2fs, labels %v\n",
				res.ItemID, len(res.ModelsRun), res.TimeSec, names)
		}
	}
	fmt.Printf("%d frames labeled: avg %.1f models, %.2fs each (no-policy: %.2fs)\n",
		n, float64(models)/float64(n), timeSec/float64(n), sys.NoPolicyTimeSec())
}

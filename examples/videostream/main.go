// Videostream: labeling a correlated (video-like) stream where content
// arrives in chunks. For such data the paper's introduction observes that
// a simple explore–exploit policy works extremely well: probe all models
// at the head of each chunk, then run only the discovered valuable subset.
package main

import (
	"fmt"
	"log"

	"ams"
)

func main() {
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetStanford, NumImages: 300, Seed: 55})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("explore-exploit on a chunked stream (chunk = video segment)")
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s\n",
		"chunkLen", "exploreN", "avg t (s)", "saved", "recall")
	for _, cfg := range []struct{ chunk, explore int }{
		{5, 1}, {10, 1}, {20, 1}, {20, 2},
	} {
		res, err := sys.LabelChunkedStream(300, cfg.chunk, cfg.explore)
		if err != nil {
			log.Fatal(err)
		}
		saved := fmt.Sprintf("%.1f%%", 100*res.TimeSavedFrac)
		fmt.Printf("%-10d %-10d %-12.2f %-12s %-10.3f\n",
			cfg.chunk, cfg.explore, res.AvgTimeSec, saved, res.AvgRecall)
	}
	fmt.Printf("\nno-policy reference: %.2fs per frame\n", sys.NoPolicyTimeSec())
	fmt.Println("longer chunks amortize exploration; more exploration raises recall")
}

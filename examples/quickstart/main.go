// Quickstart: train a small adaptive-model-scheduling agent and label a
// few images, comparing its cost against running every model.
package main

import (
	"fmt"
	"log"

	"ams"
)

func main() {
	// 1. Build a system: a synthetic MSCOCO-like dataset, the 30-model
	//    zoo, and precomputed ground truth.
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zoo: %d models, no-policy cost %.2fs/image\n",
		len(sys.ModelNames()), sys.NoPolicyTimeSec())

	// 2. Train a DuelingDQN agent on the training split.
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN,
		Epochs:    8,
		Hidden:    []int{96},
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Label held-out images without constraints: the agent greedily
	//    runs models it predicts valuable until everything is recalled.
	fmt.Println("\nunconstrained labeling (agent decides what to run):")
	var agentTime, randomTime float64
	for i := 0; i < 5; i++ {
		res, err := sys.Label(agent, i, ams.Budget{})
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := sys.LabelRandom(i, ams.Budget{}, uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		agentTime += res.TimeSec
		randomTime += rnd.TimeSec
		fmt.Printf("  image %d: %2d models, %.2fs (random: %.2fs) — %d valuable labels\n",
			i, len(res.ModelsRun), res.TimeSec, rnd.TimeSec, len(res.ValuableLabels()))
		for _, l := range res.ValuableLabels()[:min(3, len(res.ValuableLabels()))] {
			fmt.Printf("      %-28s %.2f\n", l.Name, l.Confidence)
		}
	}
	fmt.Printf("\nagent %.2fs vs random %.2fs over 5 images (all valuable labels recalled)\n",
		agentTime, randomTime)

	// 4. Label under a tight deadline: Algorithm 1 picks the models with
	//    the best predicted value per unit time.
	fmt.Println("\n0.5s-deadline labeling (Algorithm 1):")
	res, err := sys.Label(agent, 0, ams.Budget{DeadlineSec: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran %v in %.2fs, recall %.2f\n", res.ModelsRun, res.TimeSec, res.Recall)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

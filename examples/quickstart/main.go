// Quickstart: train a small adaptive-model-scheduling agent and label a
// few images, comparing its cost against running every model.
//
// The -images/-epochs flags exist so CI can smoke-run the example at a
// tiny scale; the defaults reproduce the full walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ams"
)

func main() {
	images := flag.Int("images", 400, "synthetic images to generate")
	epochs := flag.Int("epochs", 8, "agent training epochs")
	flag.Parse()
	ctx := context.Background()

	// 1. Build a system: a synthetic MSCOCO-like dataset, the 30-model
	//    zoo, and precomputed ground truth.
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: *images, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zoo: %d models, no-policy cost %.2fs/image\n",
		len(sys.ModelNames()), sys.NoPolicyTimeSec())

	// 2. Train a DuelingDQN agent on the training split.
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN,
		Epochs:    *epochs,
		Hidden:    []int{96},
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Label held-out images without constraints: the agent greedily
	//    runs models it predicts valuable until everything is recalled.
	fmt.Println("\nunconstrained labeling (agent decides what to run):")
	var agentTime, randomTime float64
	n := min(5, sys.NumTestImages())
	for i := 0; i < n; i++ {
		res, err := sys.Label(ctx, agent, sys.TestItem(i), ams.Budget{})
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := sys.LabelRandom(ctx, sys.TestItem(i), ams.Budget{}, uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		agentTime += res.TimeSec
		randomTime += rnd.TimeSec
		fmt.Printf("  image %d: %2d models, %.2fs (random: %.2fs) — %d valuable labels\n",
			i, len(res.ModelsRun), res.TimeSec, rnd.TimeSec, len(res.ValuableLabels()))
		for _, l := range res.ValuableLabels()[:min(3, len(res.ValuableLabels()))] {
			fmt.Printf("      %-28s %.2f\n", l.Name, l.Confidence)
		}
	}
	fmt.Printf("\nagent %.2fs vs random %.2fs over %d images (all valuable labels recalled)\n",
		agentTime, randomTime, n)

	// 4. Label under a tight deadline: Algorithm 1 picks the models with
	//    the best predicted value per unit time.
	fmt.Println("\n0.5s-deadline labeling (Algorithm 1):")
	res, err := sys.Label(ctx, agent, sys.TestItem(0), ams.Budget{DeadlineSec: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran %v in %.2fs, recall %.2f\n", res.ModelsRun, res.TimeSec, res.Recall)

	// 5. The front door for YOUR data: describe a scene the library never
	//    generated and label it the same way. External items have no
	//    precomputed ground truth, so the result reports labels, models
	//    run and time — no recall (HasRecall is false).
	item, err := sys.ComposeItem(ams.SceneSpec{
		ID:      "user-photo-1",
		Place:   "place/beach",
		Objects: []string{"object/dog", "object/sports ball"},
		Persons: 2, Faces: 1,
		Action: "action/playing tennis",
		Dog:    "dog/labrador",
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ext, err := sys.Label(ctx, agent, item, ams.Budget{DeadlineSec: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexternal item %q: %d models in %.2fs (recall reported: %v)\n",
		ext.ItemID, len(ext.ModelsRun), ext.TimeSec, ext.HasRecall)
	for _, l := range ext.ValuableLabels()[:min(5, len(ext.ValuableLabels()))] {
		fmt.Printf("  %-28s %.2f\n", l.Name, l.Confidence)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Photoalbum: comprehensive labeling of a mixed photo collection under a
// per-photo deadline — the image-retrieval / album-search scenario from
// the paper's introduction. Compares the agent-driven Algorithm 1 against
// the random baseline and the optimal* reference across deadlines.
package main

import (
	"fmt"
	"log"

	"ams"
)

func main() {
	// MirFlickr mimics a social photo collection: people, scenes, pets.
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMirFlickr, NumImages: 400, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	n := sys.NumTestImages()
	fmt.Printf("labeling %d album photos under per-photo deadlines\n\n", n)
	fmt.Printf("%-10s  %-8s  %-8s  %-9s\n", "deadline", "agent", "random", "optimal*")
	for _, deadline := range []float64{0.25, 0.5, 1.0, 2.0} {
		var agentR, randR, optR float64
		for i := 0; i < n; i++ {
			b := ams.Budget{DeadlineSec: deadline}
			a, err := sys.Label(agent, i, b)
			if err != nil {
				log.Fatal(err)
			}
			r, err := sys.LabelRandom(i, b, uint64(i))
			if err != nil {
				log.Fatal(err)
			}
			o, err := sys.OptimalStarRecall(i, b)
			if err != nil {
				log.Fatal(err)
			}
			agentR += a.Recall
			randR += r.Recall
			optR += o
		}
		fmt.Printf("%-10.2f  %-8.3f  %-8.3f  %-9.3f\n",
			deadline, agentR/float64(n), randR/float64(n), optR/float64(n))
	}

	// Build a searchable keyword index from one fully labeled photo.
	fmt.Println("\nsample keyword index entries (photo 0, unconstrained):")
	res, err := sys.Label(agent, 0, ams.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	byTask := map[string][]string{}
	for _, l := range res.ValuableLabels() {
		byTask[l.Task] = append(byTask[l.Task], l.Name)
	}
	for task, names := range byTask {
		limit := len(names)
		if limit > 4 {
			limit = 4
		}
		fmt.Printf("  %-28s %v\n", task+":", names[:limit])
	}
}

// Photoalbum: comprehensive labeling of a mixed photo collection under a
// per-photo deadline — the image-retrieval / album-search scenario from
// the paper's introduction. Compares the agent-driven Algorithm 1 against
// the random baseline and the optimal* reference across deadlines, then
// ingests user photos the library never generated — described by their
// content — through the same labeling door to build a keyword index.
package main

import (
	"context"
	"fmt"
	"log"

	"ams"
)

func main() {
	ctx := context.Background()
	// MirFlickr mimics a social photo collection: people, scenes, pets.
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMirFlickr, NumImages: 400, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	n := sys.NumTestImages()
	fmt.Printf("labeling %d album photos under per-photo deadlines\n\n", n)
	fmt.Printf("%-10s  %-8s  %-8s  %-9s\n", "deadline", "agent", "random", "optimal*")
	for _, deadline := range []float64{0.25, 0.5, 1.0, 2.0} {
		var agentR, randR, optR float64
		for i := 0; i < n; i++ {
			b := ams.Budget{DeadlineSec: deadline}
			a, err := sys.Label(ctx, agent, sys.TestItem(i), b)
			if err != nil {
				log.Fatal(err)
			}
			r, err := sys.LabelRandom(ctx, sys.TestItem(i), b, uint64(i))
			if err != nil {
				log.Fatal(err)
			}
			o, err := sys.OptimalStarRecall(i, b)
			if err != nil {
				log.Fatal(err)
			}
			agentR += a.Recall
			randR += r.Recall
			optR += o
		}
		fmt.Printf("%-10.2f  %-8.3f  %-8.3f  %-9.3f\n",
			deadline, agentR/float64(n), randR/float64(n), optR/float64(n))
	}

	// Ingest the user's own photos: content the library never generated,
	// described by what is in them, labeled through the same door. A
	// batch call fans the album across workers; each result feeds the
	// keyword index. External photos carry no ground truth, so results
	// report labels, models run and time (HasRecall is false).
	specs := []ams.SceneSpec{
		{ID: "beach-day.jpg", Place: "place/beach", Persons: 3, Faces: 2,
			Action: "action/swimming", Objects: []string{"object/surfboard"}, Seed: 1},
		{ID: "pub-night.jpg", Place: "place/pub", Persons: 4, Faces: 4,
			Action: "action/drinking beer", Emotion: "emotion/happy", Seed: 2},
		{ID: "dog-walk.jpg", Place: "place/park", Persons: 1, Faces: 1,
			Action: "action/walking dog", Dog: "dog/golden retriever", Seed: 3},
	}
	album := make([]ams.Item, 0, len(specs))
	for _, spec := range specs {
		item, err := sys.ComposeItem(spec)
		if err != nil {
			log.Fatal(err)
		}
		album = append(album, item)
	}
	results, stats, err := sys.LabelBatch(ctx, agent, album, ams.Budget{DeadlineSec: 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ningested %d user photos (avg %.2fs each); keyword index:\n",
		stats.Processed, stats.AvgTimeSec)
	for _, res := range results {
		byTask := map[string][]string{}
		for _, l := range res.ValuableLabels() {
			byTask[l.Task] = append(byTask[l.Task], l.Name)
		}
		fmt.Printf("  %s (%d models):\n", res.ItemID, len(res.ModelsRun))
		for task, names := range byTask {
			limit := len(names)
			if limit > 4 {
				limit = 4
			}
			fmt.Printf("    %-26s %v\n", task+":", names[:limit])
		}
	}
}

// Labelserver: run the real concurrent labeling server. A pool of
// worker goroutines labels submitted images under a per-item deadline
// while one shared Algorithm-2 memory accountant keeps the whole pool
// inside a global GPU budget; clients feel backpressure through the
// bounded admission queue.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"ams"
)

func main() {
	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: 8, Hidden: []int{96}, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 4-worker server sharing a 6 GB GPU budget, replayed at 1000x
	// real-time so the example finishes instantly. ServeConfig.Policy
	// picks the per-worker scheduler; ams.PolicyAlgorithm2 would instead
	// run each item's models in parallel across the pool.
	srv, err := sys.NewServer(agent, ams.ServeConfig{
		Workers:     4,
		Policy:      ams.PolicyAlgorithm1,
		DeadlineSec: 0.5,
		MemoryGB:    6,
		QueueCap:    8,
		TimeScale:   0.001,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three clients submit concurrently; SubmitWait blocks when the
	// bounded queue is saturated (Submit would return ErrQueueFull).
	var wg sync.WaitGroup
	for client := 0; client < 3; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				img := (client*10 + i) % sys.NumTestImages()
				tk, err := srv.SubmitWait(context.Background(), img)
				if errors.Is(err, ams.ErrServerClosed) {
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				res := tk.Wait()
				if i == 0 {
					fmt.Printf("client %d, image %3d: %2d models, %.2fs schedule, recall %.2f\n",
						client, res.Image, len(res.ModelsRun), res.TimeSec, res.Recall)
				}
			}
		}(client)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	s := srv.Stats()
	fmt.Printf("\n%d items served: avg latency %.3fs (p95 %.3fs), recall %.2f, throughput %.1f/s\n",
		s.Items, s.AvgLatencySec, s.P95LatencySec, s.AvgRecall, s.ThroughputHz)
	fmt.Printf("peak GPU memory %0.f MB of the %0.f MB budget (%d executions waited)\n",
		s.PeakMemMB, 6.0*1024, s.MemWaits)
}

// Labelserver: run the real concurrent labeling server. A pool of
// worker goroutines labels submitted items under a per-item deadline
// while one shared Algorithm-2 memory accountant keeps the whole pool
// inside a global GPU budget; clients feel backpressure through the
// bounded admission queue.
//
// The server's front door takes arbitrary items, not just the library's
// own test split: here one client submits held-out images (whose results
// report recall against the precomputed ground truth) while another
// ingests freshly generated external scenes the oracle has never seen
// (labels, models run and time only — production's view). Completions
// are consumed as one stream through Results, with no tickets held.
//
// With -journal the ingestion becomes durable: admitted scenes, memoized
// model outputs and completed schedules land in a write-ahead journal,
// and committed items are evicted from memory. A run killed mid-stream
// is recovered with -replay: committed items come back bit-identically
// from their persisted memos without re-running any model, uncommitted
// ones are relabeled.
//
// With -shards N the same server splits into N affinity-routed,
// work-stealing shards, each with its own worker slice, memory
// accountant and (with -journal, then a directory) journal segment;
// -replay recovers every segment in parallel.
//
// The -images/-epochs/-timescale flags exist so CI can smoke-run the
// example at a tiny scale (and crash-recover it: see the crash-recovery
// CI job, which SIGKILLs a -journal run mid-stream and replays it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"ams"
)

// isDir reports whether path exists and is a directory — a segmented
// (sharded) journal rather than a single-file one.
func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func main() {
	images := flag.Int("images", 400, "synthetic images to generate")
	epochs := flag.Int("epochs", 8, "agent training epochs")
	timescale := flag.Float64("timescale", 0.001, "real seconds per simulated second")
	journal := flag.String("journal", "", "write-ahead journal path: makes ingestion durable and crash-recoverable")
	replay := flag.Bool("replay", false, "recover the -journal corpus from a previous (possibly killed) run and exit")
	shards := flag.Int("shards", 0, "split the server into this many shards (affinity-routed, work-stealing); with -journal the path becomes a directory of per-shard segments")
	metrics := flag.String("metrics", "", "serve live telemetry over HTTP at this host:port (\":0\" picks a free port): /metrics, /statusz, /tracez, /debug/pprof")
	slo := flag.String("slo", "", "comma-separated latency objectives (e.g. \"p99<250ms\"); enables telemetry and ams_slo_* burn-rate accounting")
	flightDir := flag.String("flight-dir", "", "arm the anomaly flight recorder: pre-anomaly trace+metric bundles land in this directory")
	flag.Parse()
	if *replay && *journal == "" {
		log.Fatal("labelserver: -replay requires -journal")
	}

	sys, err := ams.New(ams.Config{Dataset: ams.DatasetMSCOCO, NumImages: *images, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.TrainAgent(ams.TrainOptions{
		Algorithm: ams.DuelingDQN, Epochs: *epochs, Hidden: []int{96}, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 4-worker server sharing a 6 GB GPU budget, replayed fast so the
	// example finishes instantly. ServeConfig.Policy picks the per-worker
	// scheduler; ams.PolicyAlgorithm2 would instead run each item's
	// models in parallel across the pool.
	cfg := ams.ServeConfig{
		Workers:     4,
		Policy:      ams.PolicyAlgorithm1,
		DeadlineSec: 0.5,
		MemoryGB:    6,
		QueueCap:    8,
		TimeScale:   *timescale,
		MetricsAddr: *metrics,
		FlightDir:   *flightDir,
	}
	if *slo != "" {
		cfg.SLOs = strings.Split(*slo, ",")
	}
	if *shards > 1 {
		// Sharded mode: each shard gets its own worker slice, memory
		// accountant and journal segment; the router places items by
		// model affinity and steals work into idle shards.
		cfg.Shards = *shards
		cfg.ShardPlacement = "affinity"
		cfg.ShardSteal = true
	}

	var corpus *ams.Corpus
	if *journal != "" {
		// MaxResident 8 keeps at most 8 ingested items' memos in memory
		// (per segment when sharded): committed items are evicted (their
		// durable copy is the journal) and admission of the 9th in-flight
		// item blocks.
		copts := ams.CorpusOptions{MaxResident: 8}
		if *shards > 1 || (*replay && isDir(*journal)) {
			// One journal segment per shard under the directory; replay
			// reopens however many segments the manifest records.
			corpus, err = sys.OpenCorpusDir(*journal, *shards, copts)
		} else {
			corpus, err = sys.OpenCorpus(*journal, copts)
		}
		if err != nil {
			log.Fatal(err)
		}
		cfg.Corpus = corpus
	}

	if *replay {
		rep, err := sys.ReplayCorpus(context.Background(), agent, cfg, corpus)
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Segments) > 1 {
			for _, sr := range rep.Segments {
				fmt.Printf("segment %d: recovered %d committed, relabeled %d uncommitted\n",
					sr.Segment, sr.Recovered, sr.Relabeled)
			}
		}
		fmt.Printf("recovered %d committed items (no model re-runs), relabeled %d uncommitted items\n",
			len(rep.Recovered), len(rep.Relabeled))
		if err := corpus.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv, err := sys.NewServer(agent, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if addr := srv.MetricsAddr(); addr != "" {
		fmt.Printf("telemetry: http://%s/metrics /statusz /tracez /debug/pprof\n", addr)
	}

	// Subscribe to the completion stream BEFORE submitting: results are
	// consumed here as they finish, no tickets held anywhere.
	results := srv.Results()
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		var oracleBacked, external int
		for res := range results {
			if res.HasRecall {
				oracleBacked++
				if oracleBacked == 1 {
					fmt.Printf("test image %3d: %2d models, %.2fs schedule, recall %.2f\n",
						res.Image, len(res.ModelsRun), res.TimeSec, res.Recall)
				}
			} else {
				external++
				if external == 1 {
					fmt.Printf("external %q: %2d models, %.2fs schedule (no ground truth)\n",
						res.ItemID, len(res.ModelsRun), res.TimeSec)
				}
			}
		}
		fmt.Printf("stream closed: %d oracle-backed + %d external completions\n",
			oracleBacked, external)
	}()

	var wg sync.WaitGroup
	// Client 1+2: held-out test images through the built-in source.
	for client := 0; client < 2; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				img := (client*10 + i) % sys.NumTestImages()
				if _, err := srv.SubmitWait(context.Background(), sys.TestItem(img)); err != nil {
					if errors.Is(err, ams.ErrServerClosed) {
						return
					}
					log.Fatal(err)
				}
			}
		}(client)
	}
	// Client 3: external items the oracle has never seen, same door.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, item := range sys.GenerateItems(10, 99) {
			if _, err := srv.SubmitWait(context.Background(), item); err != nil {
				if errors.Is(err, ams.ErrServerClosed) {
					return
				}
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	<-consumed // the results channel closes once the server drains

	// The same renderer cmd/amsserve uses, so both binaries report a run
	// in one format.
	fmt.Println()
	srv.Stats().WriteSummary(os.Stdout, "server", 6*1024)
	// With telemetry on (any of -metrics, -slo, -flight-dir), explain
	// the slowest item stage by stage through the shared critical-path
	// renderer: traces stay readable after Close.
	if tr, ok := srv.SlowestTrace(); ok {
		fmt.Println()
		tr.WriteCriticalPath(os.Stdout, "slowest item")
	}
	if corpus != nil {
		corpus.Stats().WriteSummary(os.Stdout)
		if err := corpus.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

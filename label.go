package ams

import (
	"context"
	"fmt"

	"ams/internal/core"
	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/sim"
	"ams/internal/zoo"
)

// Agent is a trained model-value predictor ready to drive scheduling.
type Agent struct {
	inner *core.Agent
}

// Algorithm returns the DRL variant the agent was trained with.
func (a *Agent) Algorithm() Algorithm { return a.inner.Algo }

// TrainedOn returns the dataset profile name used for training.
func (a *Agent) TrainedOn() string { return a.inner.Dataset }

// Save writes the agent to a file.
func (a *Agent) Save(path string) error { return a.inner.SaveFile(path) }

// LoadAgent reads an agent previously written with Save.
func LoadAgent(path string) (*Agent, error) {
	inner, err := core.LoadAgentFile(path)
	if err != nil {
		return nil, err
	}
	return &Agent{inner: inner}, nil
}

// cloneInner returns a private copy of the agent's predictor for one
// worker: a forward pass caches activations in the network, so
// concurrent workers must never share one. Both LabelBatch and the
// serving layer build their per-worker agents through this rule.
func (a *Agent) cloneInner() *core.Agent {
	return &core.Agent{
		Net:       a.inner.Net.Clone(),
		NumModels: a.inner.NumModels,
		Algo:      a.inner.Algo,
		Dataset:   a.inner.Dataset,
	}
}

// clonePredictor wraps a private network clone in the per-schedule
// Q-prediction memo: repeated policy asks on an unchanged labeling state
// replay the cached forward pass instead of re-running it. A non-nil
// shared cache additionally spans the memo across items and workers —
// valid because every clone carries identical frozen weights, so one
// worker's forward pass answers the same labeling state anywhere.
func (a *Agent) clonePredictor(shared *sched.SharedCache) sched.Predictor {
	return sched.NewSharedCachedPredictor(a.cloneInner(), shared)
}

// PredictValues returns the agent's current value estimate for every
// model given the set of label IDs already emitted for the item.
func (a *Agent) PredictValues(emittedLabelIDs []int) []float64 {
	q := a.inner.Predict(emittedLabelIDs)
	return append([]float64(nil), q[:a.inner.NumModels]...)
}

// Budget is a per-image resource constraint.
type Budget struct {
	// DeadlineSec bounds the schedule's execution time. Zero means no
	// deadline (the scheduler stops when no model is predicted valuable).
	DeadlineSec float64
	// MemoryGB, when positive, enables the multi-processor setting of
	// Algorithm 2: models run in parallel under this shared GPU budget.
	MemoryGB float64
}

// Validate checks the budget's shape. Every labeling surface (Label,
// LabelRandom, LabelWith, LabelBatch, OptimalStarRecall) applies it, so
// the rules live in exactly one place: budgets must be non-negative, and
// a memory budget needs a deadline — the parallel executor packs model
// time x memory rectangles into the deadline x memory area, which is
// unbounded without one.
func (b Budget) Validate() error {
	if b.DeadlineSec < 0 {
		return fmt.Errorf("ams: negative deadline %v s", b.DeadlineSec)
	}
	if b.MemoryGB < 0 {
		return fmt.Errorf("ams: negative memory budget %v GB", b.MemoryGB)
	}
	if b.MemoryGB > 0 && b.DeadlineSec <= 0 {
		return fmt.Errorf("ams: a memory budget requires a deadline")
	}
	return nil
}

// OutputLabel is one emitted label.
type OutputLabel struct {
	Name       string
	Task       string
	Confidence float64
	Valuable   bool // confidence at or above the valuable threshold
}

// Result reports one labeled item.
type Result struct {
	Image     int           // held-out image index; -1 for external items
	ItemID    string        // the item's ID, echoed verbatim
	Labels    []OutputLabel // all emitted labels, deduplicated
	ModelsRun []string      // executed models in order
	TimeSec   float64       // serial: summed model time; parallel: makespan

	// Recall is the fraction of the item's valuable value recalled —
	// meaningful only when HasRecall is true. Ground truth exists for
	// oracle-backed (test-split) items; externally ingested items report
	// labels, models run, and time, which is what production gives you.
	Recall    float64
	HasRecall bool
}

// cancelPolicy makes a context cancel a running schedule: once ctx is
// done it declines every selection, which every executor treats as the
// policy stopping — the remaining schedule is aborted and the labels
// emitted so far stand as the partial result.
type cancelPolicy struct {
	sim.Policy
	ctx context.Context
}

func (p cancelPolicy) Next(t *oracle.Tracker, c sim.Constraints) int {
	if p.ctx.Err() != nil {
		return -1
	}
	return p.Policy.Next(t, c)
}

// withCancel wraps a policy so ctx cancellation aborts its schedule.
func withCancel(ctx context.Context, p sim.Policy) sim.Policy {
	if ctx.Done() == nil {
		return p // not cancellable; skip the per-ask check
	}
	return cancelPolicy{Policy: p, ctx: ctx}
}

// Label schedules model executions for one item under the budget, driven
// by the agent and DefaultPolicy(b): Algorithm 1 for a pure deadline,
// Algorithm 2 when a memory budget is present, and plain value-greedy
// scheduling when unconstrained. Items come from TestItem (the built-in
// held-out split, with recall), ComposeItem or GenerateItems (external
// content, executed on demand). Use LabelWith to pick the policy
// explicitly.
//
// Cancelling ctx aborts the remaining schedule: Label returns the
// partial result of the models that already ran, alongside ctx.Err().
func (s *System) Label(ctx context.Context, agent *Agent, item Item, b Budget) (*Result, error) {
	if agent == nil {
		return nil, fmt.Errorf("ams: nil agent")
	}
	return s.LabelWith(ctx, DefaultPolicy(b), agent, item, b)
}

// LabelRandom labels an item with the random baseline under the same
// budget semantics as Label — useful for the comparisons the paper plots.
func (s *System) LabelRandom(ctx context.Context, item Item, b Budget, seed uint64) (*Result, error) {
	return s.LabelWith(ctx, PolicyRandom.WithSeed(seed), nil, item, b)
}

// LabelImage is the deprecated index-based surface: it labels held-out
// image i exactly as Label(context.Background(), agent, s.TestItem(i), b)
// does.
//
// Deprecated: use Label with TestItem.
func (s *System) LabelImage(agent *Agent, image int, b Budget) (*Result, error) {
	//amsvet:allow ctxflow documented convenience wrapper: LabelImage is specified as Label with a Background ctx
	return s.Label(context.Background(), agent, s.TestItem(image), b)
}

// OptimalStarRecall returns the relaxed optimal* reference recall for a
// held-out image under the budget (§V-C) — the yardstick the paper
// compares its heuristics against. It is inherently oracle-backed: the
// bound needs ground truth, so it takes a test-split index, not an Item.
func (s *System) OptimalStarRecall(image int, b Budget) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := s.checkImage(image); err != nil {
		return 0, err
	}
	if b.MemoryGB > 0 {
		return sched.OptimalStarMemory(s.testStore, image, b.DeadlineSec*1000, b.MemoryGB*1024), nil
	}
	if b.DeadlineSec <= 0 {
		return 1, nil
	}
	return sched.OptimalStarDeadline(s.testStore, image, b.DeadlineSec*1000), nil
}

// buildResult converts an execution trace into the public Result,
// reading the executed models' (memoized) outputs back from the
// executor. The serving layer instead captures outputs by value at
// commit time and goes straight to assembleResult — after commit an
// item's memo may already be evicted.
func (s *System) buildResult(ex oracle.Executor, idx int, item Item, res sim.SerialResult) *Result {
	names := make([]string, len(res.Executed))
	outputs := make([]zoo.Output, len(res.Executed))
	for i, m := range res.Executed {
		names[i] = ex.Model(m).Name
		outputs[i] = ex.Output(idx, m)
	}
	return s.assembleResult(item, names, outputs, res.TimeMS, res.Recall, res.HasRecall)
}

// assembleResult reduces an executed schedule — model names and their
// outputs, by value — to the public Result: labels deduplicated at their
// best confidence, in first-emission order. It is the shared tail of
// the lazy (buildResult) and captured-output (server, corpus recovery)
// paths.
func (s *System) assembleResult(item Item, modelNames []string, outputs []zoo.Output, timeMS, recall float64, hasRecall bool) *Result {
	out := &Result{
		Image:     item.image,
		ItemID:    item.id,
		TimeSec:   timeMS / 1000,
		Recall:    recall,
		HasRecall: hasRecall,
	}
	if item.ext != nil {
		out.Image = -1
	}
	seen := map[int]float64{}
	var order []int
	for i, name := range modelNames {
		out.ModelsRun = append(out.ModelsRun, name)
		for _, lc := range outputs[i].Labels {
			if prev, ok := seen[lc.ID]; !ok {
				seen[lc.ID] = lc.Conf
				order = append(order, lc.ID)
			} else if lc.Conf > prev {
				seen[lc.ID] = lc.Conf
			}
		}
	}
	for _, id := range order {
		l := s.Vocabulary.Label(id)
		out.Labels = append(out.Labels, OutputLabel{
			Name:       l.Name,
			Task:       l.Task.String(),
			Confidence: seen[id],
			Valuable:   seen[id] >= ValuableThreshold,
		})
	}
	return out
}

// ValuableLabels filters a result's labels to the valuable ones.
func (r *Result) ValuableLabels() []OutputLabel {
	var out []OutputLabel
	for _, l := range r.Labels {
		if l.Valuable {
			out = append(out, l)
		}
	}
	return out
}

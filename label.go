package ams

import (
	"fmt"

	"ams/internal/core"
	"ams/internal/sched"
	"ams/internal/sim"
)

// Agent is a trained model-value predictor ready to drive scheduling.
type Agent struct {
	inner *core.Agent
}

// Algorithm returns the DRL variant the agent was trained with.
func (a *Agent) Algorithm() Algorithm { return a.inner.Algo }

// TrainedOn returns the dataset profile name used for training.
func (a *Agent) TrainedOn() string { return a.inner.Dataset }

// Save writes the agent to a file.
func (a *Agent) Save(path string) error { return a.inner.SaveFile(path) }

// LoadAgent reads an agent previously written with Save.
func LoadAgent(path string) (*Agent, error) {
	inner, err := core.LoadAgentFile(path)
	if err != nil {
		return nil, err
	}
	return &Agent{inner: inner}, nil
}

// cloneInner returns a private copy of the agent's predictor for one
// worker: a forward pass caches activations in the network, so
// concurrent workers must never share one. Both LabelBatch and the
// serving layer build their per-worker agents through this rule.
func (a *Agent) cloneInner() *core.Agent {
	return &core.Agent{
		Net:       a.inner.Net.Clone(),
		NumModels: a.inner.NumModels,
		Algo:      a.inner.Algo,
		Dataset:   a.inner.Dataset,
	}
}

// PredictValues returns the agent's current value estimate for every
// model given the set of label IDs already emitted for the item.
func (a *Agent) PredictValues(emittedLabelIDs []int) []float64 {
	q := a.inner.Predict(emittedLabelIDs)
	return append([]float64(nil), q[:a.inner.NumModels]...)
}

// Budget is a per-image resource constraint.
type Budget struct {
	// DeadlineSec bounds the schedule's execution time. Zero means no
	// deadline (the scheduler stops when no model is predicted valuable).
	DeadlineSec float64
	// MemoryGB, when positive, enables the multi-processor setting of
	// Algorithm 2: models run in parallel under this shared GPU budget.
	MemoryGB float64
}

// Validate checks the budget's shape. Every labeling surface (Label,
// LabelRandom, LabelWith, LabelBatch, OptimalStarRecall) applies it, so
// the rules live in exactly one place: budgets must be non-negative, and
// a memory budget needs a deadline — the parallel executor packs model
// time x memory rectangles into the deadline x memory area, which is
// unbounded without one.
func (b Budget) Validate() error {
	if b.DeadlineSec < 0 {
		return fmt.Errorf("ams: negative deadline %v s", b.DeadlineSec)
	}
	if b.MemoryGB < 0 {
		return fmt.Errorf("ams: negative memory budget %v GB", b.MemoryGB)
	}
	if b.MemoryGB > 0 && b.DeadlineSec <= 0 {
		return fmt.Errorf("ams: a memory budget requires a deadline")
	}
	return nil
}

// OutputLabel is one emitted label.
type OutputLabel struct {
	Name       string
	Task       string
	Confidence float64
	Valuable   bool // confidence at or above the valuable threshold
}

// Result reports one labeled image.
type Result struct {
	Image     int
	Labels    []OutputLabel // all emitted labels, deduplicated
	ModelsRun []string      // executed models in order
	TimeSec   float64       // serial: summed model time; parallel: makespan
	Recall    float64       // fraction of the image's valuable value recalled
}

// Label schedules model executions for one held-out image under the
// budget, driven by the agent and DefaultPolicy(b): Algorithm 1 for a
// pure deadline, Algorithm 2 when a memory budget is present, and plain
// value-greedy scheduling when unconstrained. Use LabelWith to pick the
// policy explicitly.
func (s *System) Label(agent *Agent, image int, b Budget) (*Result, error) {
	if agent == nil {
		return nil, fmt.Errorf("ams: nil agent")
	}
	return s.LabelWith(DefaultPolicy(b), agent, image, b)
}

// LabelRandom labels an image with the random baseline under the same
// budget semantics as Label — useful for the comparisons the paper plots.
func (s *System) LabelRandom(image int, b Budget, seed uint64) (*Result, error) {
	return s.LabelWith(PolicyRandom.WithSeed(seed), nil, image, b)
}

// OptimalStarRecall returns the relaxed optimal* reference recall for an
// image under the budget (§V-C) — the yardstick the paper compares its
// heuristics against.
func (s *System) OptimalStarRecall(image int, b Budget) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := s.checkImage(image); err != nil {
		return 0, err
	}
	if b.MemoryGB > 0 {
		return sched.OptimalStarMemory(s.testStore, image, b.DeadlineSec*1000, b.MemoryGB*1024), nil
	}
	if b.DeadlineSec <= 0 {
		return 1, nil
	}
	return sched.OptimalStarDeadline(s.testStore, image, b.DeadlineSec*1000), nil
}

// buildResult converts an execution trace into the public Result.
func (s *System) buildResult(image int, res sim.SerialResult) *Result {
	out := &Result{
		Image:   image,
		TimeSec: res.TimeMS / 1000,
		Recall:  res.Recall,
	}
	seen := map[int]float64{}
	var order []int
	for _, m := range res.Executed {
		out.ModelsRun = append(out.ModelsRun, s.Zoo.Models[m].Name)
		for _, lc := range s.testStore.Output(image, m).Labels {
			if prev, ok := seen[lc.ID]; !ok {
				seen[lc.ID] = lc.Conf
				order = append(order, lc.ID)
			} else if lc.Conf > prev {
				seen[lc.ID] = lc.Conf
			}
		}
	}
	for _, id := range order {
		l := s.Vocabulary.Label(id)
		out.Labels = append(out.Labels, OutputLabel{
			Name:       l.Name,
			Task:       l.Task.String(),
			Confidence: seen[id],
			Valuable:   seen[id] >= ValuableThreshold,
		})
	}
	return out
}

// ValuableLabels filters a result's labels to the valuable ones.
func (r *Result) ValuableLabels() []OutputLabel {
	var out []OutputLabel
	for _, l := range r.Labels {
		if l.Valuable {
			out = append(out, l)
		}
	}
	return out
}

package ams

import (
	"ams/internal/obs"
)

// TelemetryMetric is one metric series' point-in-time state, as carried
// in ServeStats.Telemetry: counters and gauges report Value; histograms
// additionally report Count, Sum, and the nearest-rank quantiles (Value
// is then the mean). The same series, in the same units, appear on the
// HTTP exporter's /metrics endpoint — DESIGN.md §8 catalogs them.
type TelemetryMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"` // "counter", "gauge", or "histogram"
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

func telemetryFromObs(ms []obs.Metric) []TelemetryMetric {
	if ms == nil {
		return nil
	}
	out := make([]TelemetryMetric, len(ms))
	for i, m := range ms {
		out[i] = TelemetryMetric{
			Name: m.Name, Kind: m.Kind, Labels: m.Labels,
			Value: m.Value, Count: m.Count, Sum: m.Sum,
			P50: m.P50, P95: m.P95, P99: m.P99,
		}
	}
	return out
}

// A DecisionEvent is one structured scheduling decision from an item's
// trace, with the constraint values the worker saw at decision time.
// Kinds: "selected" (policy picked Model), "skipped-over-budget" (the
// policy declined with unexecuted models remaining), "mem-stall"
// (selection waited for memory to free), "deferred-to-batch" (execution
// handed to a batch lane, Queued deep), "exec" (direct execution), and
// "commit" (schedule finalized).
type DecisionEvent struct {
	Kind        string  `json:"kind"`
	Model       int     `json:"model"`        // -1 when not model-specific
	RemainingMS float64 `json:"remaining_ms"` // deadline budget left
	AvailMemMB  float64 `json:"avail_mem_mb"` // memory-accountant headroom
	Queued      int     `json:"queued,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// A DecisionTrace is one completed item's scheduling narrative — the
// ordered decision events from dequeue to commit. Traces live in a
// bounded ring (the most recent few hundred items), retrievable by
// recency (Traces), by submission tag (TraceFor), or over HTTP as JSON
// (/tracez). DroppedEvents counts events past the per-item cap.
type DecisionTrace struct {
	Item          int             `json:"item"`
	Tag           string          `json:"tag,omitempty"`
	Seq           int64           `json:"seq"`
	Events        []DecisionEvent `json:"events"`
	DroppedEvents int             `json:"dropped_events,omitempty"`
}

func traceFromObs(tr obs.ItemTrace) DecisionTrace {
	out := DecisionTrace{
		Item: tr.Item, Tag: tr.Tag, Seq: tr.Seq, DroppedEvents: tr.Dropped,
		Events: make([]DecisionEvent, len(tr.Events)),
	}
	for i, ev := range tr.Events {
		out.Events[i] = DecisionEvent{
			Kind: ev.Kind, Model: ev.Model, RemainingMS: ev.RemainingMS,
			AvailMemMB: ev.AvailMemMB, Queued: ev.Queued, Note: ev.Note,
		}
	}
	return out
}

// MetricsAddr reports the HTTP exporter's bound address — useful with
// ServeConfig.MetricsAddr ":0" — or "" when the exporter is off.
func (sv *Server) MetricsAddr() string {
	return sv.exporter.Addr()
}

// Traces returns up to n of the most recently completed items' decision
// traces, newest first. Nil unless ServeConfig.Telemetry is on.
func (sv *Server) Traces(n int) []DecisionTrace {
	trs := sv.tracer.Recent(n)
	if trs == nil {
		return nil
	}
	out := make([]DecisionTrace, len(trs))
	for i, tr := range trs {
		out[i] = traceFromObs(tr)
	}
	return out
}

// TraceFor returns the most recent resident decision trace for an item
// submitted with the given tag (ItemID), if it is still in the ring.
func (sv *Server) TraceFor(tag string) (DecisionTrace, bool) {
	tr, ok := sv.tracer.ByTag(tag)
	if !ok {
		return DecisionTrace{}, false
	}
	return traceFromObs(tr), true
}

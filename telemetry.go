package ams

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ams/internal/obs"
)

// TelemetryMetric is one metric series' point-in-time state, as carried
// in ServeStats.Telemetry: counters and gauges report Value; histograms
// additionally report Count, Sum, and the nearest-rank quantiles (Value
// is then the mean). The same series, in the same units, appear on the
// HTTP exporter's /metrics endpoint — DESIGN.md §8 catalogs them.
type TelemetryMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"` // "counter", "gauge", or "histogram"
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P95    float64           `json:"p95,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

func telemetryFromObs(ms []obs.Metric) []TelemetryMetric {
	if ms == nil {
		return nil
	}
	out := make([]TelemetryMetric, len(ms))
	for i, m := range ms {
		out[i] = TelemetryMetric{
			Name: m.Name, Kind: m.Kind, Labels: m.Labels,
			Value: m.Value, Count: m.Count, Sum: m.Sum,
			P50: m.P50, P95: m.P95, P99: m.P99,
		}
	}
	return out
}

// A DecisionEvent is one structured scheduling decision from an item's
// trace, with the constraint values the worker saw at decision time.
// Kinds: "selected" (policy picked Model), "skipped-over-budget" (the
// policy declined with unexecuted models remaining), "mem-stall"
// (selection waited for memory to free), "deferred-to-batch" (execution
// handed to a batch lane, Queued deep), "exec" (direct execution), and
// "commit" (schedule finalized).
type DecisionEvent struct {
	Kind        string  `json:"kind"`
	Model       int     `json:"model"`        // -1 when not model-specific
	RemainingMS float64 `json:"remaining_ms"` // deadline budget left
	AvailMemMB  float64 `json:"avail_mem_mb"` // memory-accountant headroom
	Queued      int     `json:"queued,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// A TraceSpanLink is a causality edge that crosses item or shard
// boundaries: "steal" links a stolen item's home (victim) shard to the
// shard that executed it; "batch" links a waiter span to its shared
// batched execution (ID is the batch identity).
type TraceSpanLink struct {
	Kind string `json:"kind"` // "steal" | "batch"
	From int    `json:"from"`
	To   int    `json:"to"`
	ID   int64  `json:"id,omitempty"`
}

// A TraceSpan is one timed stage of an item's lifecycle — queue wait,
// selection rounds, reserve wait, batch hold, execution, commit — in a
// parent/child tree under span 0 (the root "item" span). Offsets are
// measured from the item's arrival on both clocks: StartUS/EndUS in
// wall microseconds and VStartMS/VEndMS in virtual milliseconds (wall ÷
// TimeScale), so simulated and real-time runs of one schedule read
// identically in the virtual columns.
type TraceSpan struct {
	ID       int             `json:"id"`
	Parent   int             `json:"parent"` // -1 for the root span
	Name     string          `json:"name"`
	Model    int             `json:"model"` // -1 when not model-specific
	StartUS  int64           `json:"start_us"`
	EndUS    int64           `json:"end_us"`
	VStartMS float64         `json:"vstart_ms"`
	VEndMS   float64         `json:"vend_ms"`
	Batch    int64           `json:"batch,omitempty"`
	BatchN   int             `json:"batch_n,omitempty"`
	Links    []TraceSpanLink `json:"links,omitempty"`
	Note     string          `json:"note,omitempty"`
}

// A DecisionTrace is one completed item's scheduling narrative — the
// ordered decision events from dequeue to commit, plus the causal span
// tree of its lifecycle stages. Traces live in a bounded ring (the most
// recent TraceCapacity items), retrievable by recency (Traces), by
// submission tag (TraceFor), or over HTTP as JSON (/tracez; add
// ?format=chrome for Perfetto). DroppedEvents and DroppedSpans count
// entries past the per-item caps. Home and Shard differ exactly when
// the item was stolen across shards.
type DecisionTrace struct {
	Item          int             `json:"item"`
	Tag           string          `json:"tag,omitempty"`
	Seq           int64           `json:"seq"`
	Events        []DecisionEvent `json:"events"`
	DroppedEvents int             `json:"dropped_events,omitempty"`

	Shard        int         `json:"shard"`
	Home         int         `json:"home"`
	Stolen       bool        `json:"stolen,omitempty"`
	TimeScale    float64     `json:"time_scale,omitempty"`
	Spans        []TraceSpan `json:"spans,omitempty"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
}

func traceFromObs(tr obs.ItemTrace) DecisionTrace {
	out := DecisionTrace{
		Item: tr.Item, Tag: tr.Tag, Seq: tr.Seq, DroppedEvents: tr.Dropped,
		Events: make([]DecisionEvent, len(tr.Events)),
		Shard:  tr.Shard, Home: tr.Home, Stolen: tr.Stolen,
		TimeScale: tr.Scale, DroppedSpans: tr.DroppedSpans,
	}
	for i, ev := range tr.Events {
		out.Events[i] = DecisionEvent{
			Kind: ev.Kind, Model: ev.Model, RemainingMS: ev.RemainingMS,
			AvailMemMB: ev.AvailMemMB, Queued: ev.Queued, Note: ev.Note,
		}
	}
	if len(tr.Spans) > 0 {
		out.Spans = make([]TraceSpan, len(tr.Spans))
		for i, sp := range tr.Spans {
			ts := TraceSpan{
				ID: sp.ID, Parent: sp.Parent, Name: sp.Name, Model: sp.Model,
				StartUS: sp.StartUS, EndUS: sp.EndUS,
				VStartMS: sp.VStartMS, VEndMS: sp.VEndMS,
				Batch: sp.Batch, BatchN: sp.BatchN, Note: sp.Note,
			}
			for _, ln := range sp.Links {
				ts.Links = append(ts.Links, TraceSpanLink{Kind: ln.Kind, From: ln.From, To: ln.To, ID: ln.ID})
			}
			out.Spans[i] = ts
		}
	}
	return out
}

// A CriticalPathStage is one attributed stage of an item's critical
// path: how much of the item's end-to-end latency the stage accounts
// for, in wall microseconds and virtual milliseconds, and as a fraction
// of the whole.
type CriticalPathStage struct {
	Name   string  `json:"name"`
	Model  int     `json:"model"` // -1 when not model-specific
	WallUS int64   `json:"wall_us"`
	VirtMS float64 `json:"virt_ms"`
	Frac   float64 `json:"frac"`
}

// CriticalPath attributes the trace's end-to-end latency to its stages
// — the answer to "where did this item's deadline budget go". Every
// instant of the root span is charged to the latest-started child span
// covering it; instants no child covers are charged to "other"
// (scheduler CPU, loop overhead). Stages aggregate by (name, model) and
// sort by descending wall time. Nil when the trace carries no spans.
func (t DecisionTrace) CriticalPath() []CriticalPathStage {
	if len(t.Spans) == 0 {
		return nil
	}
	itr := obs.ItemTrace{Scale: t.TimeScale, Spans: make([]obs.Span, len(t.Spans))}
	for i, sp := range t.Spans {
		itr.Spans[i] = obs.Span{
			ID: sp.ID, Parent: sp.Parent, Name: sp.Name, Model: sp.Model,
			StartUS: sp.StartUS, EndUS: sp.EndUS,
			VStartMS: sp.VStartMS, VEndMS: sp.VEndMS,
		}
	}
	stages := obs.CriticalPath(itr)
	out := make([]CriticalPathStage, len(stages))
	for i, st := range stages {
		out[i] = CriticalPathStage{Name: st.Name, Model: st.Model,
			WallUS: st.WallUS, VirtMS: st.VirtMS, Frac: st.Frac}
	}
	return out
}

// An SLOObjective is one parsed latency objective: "the Quantile
// fraction of items must complete within ThresholdSec".
type SLOObjective struct {
	Name         string
	Quantile     float64 // good-fraction target in (0, 1), e.g. 0.99
	ThresholdSec float64
}

// ParseSLO parses a latency-objective spec of the form "p99<250ms" —
// optionally named, "checkout:p95<1s". The quantile is the objective's
// good-fraction target; the duration (any time.ParseDuration spelling)
// is its latency threshold on the simulated clock. The name defaults to
// the quantile spelling.
func ParseSLO(spec string) (SLOObjective, error) {
	var o SLOObjective
	body := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		o.Name, body = spec[:i], spec[i+1:]
	}
	q, thr, ok := strings.Cut(body, "<")
	if !ok || !strings.HasPrefix(q, "p") {
		return o, fmt.Errorf("ams: bad SLO spec %q (want e.g. \"p99<250ms\" or \"name:p95<1s\")", spec)
	}
	pct, err := strconv.ParseFloat(q[1:], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return o, fmt.Errorf("ams: bad SLO quantile in %q (want p1–p99.999)", spec)
	}
	d, err := time.ParseDuration(thr)
	if err != nil || d <= 0 {
		return o, fmt.Errorf("ams: bad SLO threshold in %q: need a positive duration", spec)
	}
	o.Quantile = pct / 100
	o.ThresholdSec = d.Seconds()
	if o.Name == "" {
		o.Name = q
	}
	return o, nil
}

// MetricsAddr reports the HTTP exporter's bound address — useful with
// ServeConfig.MetricsAddr ":0" — or "" when the exporter is off.
func (sv *Server) MetricsAddr() string {
	return sv.exporter.Addr()
}

// Traces returns up to n of the most recently completed items' decision
// traces, newest first. Nil unless ServeConfig.Telemetry is on.
func (sv *Server) Traces(n int) []DecisionTrace {
	trs := sv.tracer.Recent(n)
	if trs == nil {
		return nil
	}
	out := make([]DecisionTrace, len(trs))
	for i, tr := range trs {
		out[i] = traceFromObs(tr)
	}
	return out
}

// TraceFor returns the most recent resident decision trace for an item
// submitted with the given tag (ItemID), if it is still in the ring.
func (sv *Server) TraceFor(tag string) (DecisionTrace, bool) {
	tr, ok := sv.tracer.ByTag(tag)
	if !ok {
		return DecisionTrace{}, false
	}
	return traceFromObs(tr), true
}

// SlowestTrace returns the resident trace with the longest end-to-end
// latency (by root-span wall duration) — the natural input to
// CriticalPath / WriteCriticalPath after a run. False when no spanned
// traces are resident (telemetry off, or nothing completed).
func (sv *Server) SlowestTrace() (DecisionTrace, bool) {
	if sv.tracer == nil {
		return DecisionTrace{}, false
	}
	var (
		best    DecisionTrace
		bestDur int64 = -1
	)
	for _, tr := range sv.Traces(sv.tracer.Capacity()) {
		if len(tr.Spans) == 0 {
			continue
		}
		if d := tr.Spans[0].EndUS - tr.Spans[0].StartUS; d > bestDur {
			best, bestDur = tr, d
		}
	}
	return best, bestDur >= 0
}

package ams

import (
	"fmt"
	"slices"
	"sync"

	"ams/internal/labels"
	"ams/internal/oracle"
	"ams/internal/synth"
	"ams/internal/tensor"
)

// Item is one unit of labeling work: either a reference to one of the
// System's built-in held-out images (TestItem — the historical surface,
// with precomputed ground truth and therefore a known Recall) or an
// externally ingested scene (ComposeItem, GenerateItems) the oracle has
// never seen, executed on demand, model by model, as the schedule asks.
//
// An external item carries its own memoized model outputs, so labeling
// the same Item on several surfaces (Label, a batch, a server) never
// re-executes a model. The zero Item is invalid; every labeling surface
// rejects it.
type Item struct {
	id    string
	image int                  // test-split index when ext == nil
	ext   *oracle.ExternalItem // externally ingested content
	valid bool
}

// ID returns the caller-supplied identifier, echoed in results.
func (it Item) ID() string { return it.id }

// External reports whether the item was ingested from outside the
// System's test split (and so has no ground truth: Result.HasRecall will
// be false).
func (it Item) External() bool { return it.ext != nil }

// WithID returns a copy of the item carrying the identifier.
func (it Item) WithID(id string) Item {
	it.id = id
	return it
}

// TestItem returns the item referring to held-out image i — the built-in
// source. Its results report Recall against the precomputed ground
// truth. The index is validated when the item is labeled.
func (s *System) TestItem(i int) Item {
	return Item{image: i, valid: true}
}

// TestItems returns TestItem for each index.
func (s *System) TestItems(images ...int) []Item {
	items := make([]Item, len(images))
	for i, img := range images {
		items[i] = s.TestItem(img)
	}
	return items
}

// SceneSpec describes an external item's content by label names — the
// front door for data the library did not generate. Every named label
// must exist in the System's vocabulary (for example "object/dog",
// "place/beach", "action/running"; see Vocabulary task prefixes).
// Unset concept fields mean "absent"; person-conditioned detail
// (keypoints) is derived from Seed.
type SceneSpec struct {
	ID string // optional identifier echoed in results

	Place   string   // place label name (defaults to the first place)
	Objects []string // object label names present in the scene
	Persons int      // number of people
	Faces   int      // visible faces (capped at Persons)
	Emotion string   // dominant facial emotion (requires a face)
	Gender  string   // dominant gender (requires a face)
	Action  string   // dominant human action (requires a person)
	Dog     string   // dog breed label name

	Seed uint64 // noise seed: model confidences, visible keypoints
}

// ComposeItem builds an external item from a content description,
// validating every label name against the vocabulary.
func (s *System) ComposeItem(spec SceneSpec) (Item, error) {
	v := s.Vocabulary
	resolve := func(field, name string, task labels.Task) (int, error) {
		l, ok := v.ByName(name)
		if !ok {
			return 0, fmt.Errorf("ams: %s: unknown label %q", field, name)
		}
		if l.Task != task {
			return 0, fmt.Errorf("ams: %s: label %q belongs to task %s, want %s",
				field, name, l.Task, task)
		}
		return l.ID, nil
	}

	rng := tensor.NewRNG(spec.Seed ^ 0x243f6a8885a308d3)
	scene := synth.Scene{
		ID:      -1,
		Seed:    rng.Uint64(),
		Emotion: -1,
		Gender:  -1,
		Action:  -1,
		Dog:     -1,
	}

	// Place (defaulting to the vocabulary's first place label).
	placeIDs := v.TaskLabels(labels.PlaceClassification)
	scene.Place = placeIDs[0]
	if spec.Place != "" {
		id, err := resolve("Place", spec.Place, labels.PlaceClassification)
		if err != nil {
			return Item{}, err
		}
		scene.Place = id
	}
	scene.Indoor = v.Label(scene.Place).Indoor

	for _, name := range spec.Objects {
		id, err := resolve("Objects", name, labels.ObjectDetection)
		if err != nil {
			return Item{}, err
		}
		scene.Objects = append(scene.Objects, id)
	}

	if spec.Persons < 0 || spec.Faces < 0 {
		return Item{}, fmt.Errorf("ams: negative person/face count")
	}
	scene.Persons = spec.Persons
	scene.Faces = spec.Faces
	if scene.Faces > scene.Persons {
		scene.Faces = scene.Persons
	}
	if scene.Persons > 0 {
		// People imply the person object and visible body keypoints, the
		// correlations the generator (and so the trained agent) relies on.
		if l, ok := v.ByName("object/person"); ok && !slices.Contains(scene.Objects, l.ID) {
			scene.Objects = append(scene.Objects, l.ID)
		}
		poseIDs := v.TaskLabels(labels.PoseEstimation)
		nKP := 5 + rng.Intn(len(poseIDs)-4)
		for _, i := range rng.Perm(len(poseIDs))[:nKP] {
			scene.PoseKP = append(scene.PoseKP, poseIDs[i])
		}
		handIDs := v.TaskLabels(labels.HandLandmark)
		nh := 6 + rng.Intn(len(handIDs)-5)
		for _, i := range rng.Perm(len(handIDs))[:nh] {
			scene.HandKP = append(scene.HandKP, handIDs[i])
		}
	}
	if spec.Emotion != "" {
		if scene.Faces == 0 {
			return Item{}, fmt.Errorf("ams: Emotion requires a visible face")
		}
		id, err := resolve("Emotion", spec.Emotion, labels.EmotionClassification)
		if err != nil {
			return Item{}, err
		}
		scene.Emotion = id
	}
	if spec.Gender != "" {
		if scene.Faces == 0 {
			return Item{}, fmt.Errorf("ams: Gender requires a visible face")
		}
		id, err := resolve("Gender", spec.Gender, labels.GenderClassification)
		if err != nil {
			return Item{}, err
		}
		scene.Gender = id
	}
	if spec.Action != "" {
		if scene.Persons == 0 {
			return Item{}, fmt.Errorf("ams: Action requires a person")
		}
		id, err := resolve("Action", spec.Action, labels.ActionClassification)
		if err != nil {
			return Item{}, err
		}
		scene.Action = id
	}
	if spec.Dog != "" {
		id, err := resolve("Dog", spec.Dog, labels.DogClassification)
		if err != nil {
			return Item{}, err
		}
		scene.Dog = id
		if l, ok := v.ByName("object/dog"); ok && !slices.Contains(scene.Objects, l.ID) {
			scene.Objects = append(scene.Objects, l.ID)
		}
	}

	return Item{
		id:    spec.ID,
		image: -1,
		ext:   oracle.NewExternalItem(s.Zoo, scene),
		valid: true,
	}, nil
}

// GenerateItems draws n fresh scenes from the System's dataset profile —
// content statistically like the training distribution but never seen by
// the oracle, the "externally arriving traffic" case. Items are tagged
// "gen/<seed>/<index>".
func (s *System) GenerateItems(n int, seed uint64) []Item {
	g := synth.NewGenerator(s.Vocabulary, s.Dataset.Profile, seed^0x452821e638d01377)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			id:    fmt.Sprintf("gen/%d/%d", seed, i),
			image: -1,
			ext:   oracle.NewExternalItem(s.Zoo, g.Next()),
			valid: true,
		}
	}
	return items
}

// SceneSource yields a stream of items to label — a camera feed, an
// upload queue, an album. Next returns ok=false when the stream ends.
// Sources are pulled from a single goroutine by the consuming surface.
type SceneSource interface {
	Next() (Item, bool)
}

// sliceSource yields a fixed item list once.
type sliceSource struct {
	items []Item
	pos   int
}

func (s *sliceSource) Next() (Item, bool) {
	if s.pos >= len(s.items) {
		return Item{}, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// ItemSource returns a SceneSource yielding the given items in order,
// once.
func ItemSource(items ...Item) SceneSource {
	return &sliceSource{items: items}
}

// testSplitSource cycles the held-out split forever.
type testSplitSource struct {
	sys *System
	mu  sync.Mutex
	pos int
}

func (t *testSplitSource) Next() (Item, bool) {
	t.mu.Lock()
	i := t.pos
	t.pos = (t.pos + 1) % t.sys.NumTestImages()
	t.mu.Unlock()
	return t.sys.TestItem(i), true
}

// TestSplitSource returns the built-in source: the held-out images,
// cycled indefinitely in index order — what Serve historically replayed.
func (s *System) TestSplitSource() SceneSource {
	return &testSplitSource{sys: s}
}

// checkItem is the one item validation every surface shares: it returns
// the item's external payload (nil for a valid test-split reference) or
// an error for the zero Item and out-of-range indices.
func (s *System) checkItem(item Item) (*oracle.ExternalItem, error) {
	switch {
	case item.ext != nil:
		return item.ext, nil
	case item.valid:
		if err := s.checkImage(item.image); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("ams: zero Item; use TestItem, ComposeItem or GenerateItems")
	}
}

// resolveItem maps an item onto the executor/index pair the scheduling
// layers run on: the precomputed test store for built-in items, a fresh
// on-demand executor for external ones.
func (s *System) resolveItem(item Item) (oracle.Executor, int, error) {
	ext, err := s.checkItem(item)
	if err != nil {
		return nil, 0, err
	}
	if ext != nil {
		ex := oracle.NewOnDemand(s.Zoo, nil)
		return ex, ex.Add(ext), nil
	}
	return s.testStore, item.image, nil
}

package ams

// Benchmark harness: one benchmark per paper table/figure. Each bench
// regenerates its experiment through the shared Lab (datasets, stores and
// trained agents are built once and cached), so a bench iteration
// measures the experiment's evaluation work. Run with
//
//	go test -bench=. -benchmem
//
// For paper-style output series, use `go run ./cmd/amsbench -exp all`.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"ams/internal/experiments"
	"ams/internal/sched"
	"ams/internal/sim"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// lab returns the shared benchmark lab at a reduced scale so the whole
// suite completes in minutes.
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.DatasetSize = 250
		cfg.Epochs = 6
		cfg.Hidden = []int{64}
		benchLab = experiments.NewLab(cfg)
	})
	return benchLab
}

// warm pre-trains the agents an experiment needs so the timed loop
// measures evaluation, not training.
func warm(b *testing.B, fn func(l *experiments.Lab)) *experiments.Lab {
	l := lab(b)
	fn(l)
	b.ResetTimer()
	return l
}

func BenchmarkFig1(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { _ = l.FullStore(experiments.DSMirFlickr) })
	for i := 0; i < b.N; i++ {
		r := l.Fig1()
		if r.TotalExecutions == 0 {
			b.Fatal("fig1 accounting")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { _ = l.FullStore(experiments.DSMSCOCO) })
	for i := 0; i < b.N; i++ {
		r := l.Fig2()
		if r.AvgOptimalSec >= r.AvgNoPolicySec {
			b.Fatal("fig2 ordering violated")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig4() }) // trains + caches sweeps
	for i := 0; i < b.N; i++ {
		rs := l.Fig4()
		if len(rs) != 3 {
			b.Fatal("fig4 shape")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig5() })
	for i := 0; i < b.N; i++ {
		rs := l.Fig5()
		if len(rs) != 3 {
			b.Fatal("fig5 shape")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig6() })
	for i := 0; i < b.N; i++ {
		r := l.Fig6()
		if len(r.Policies) != 4 {
			b.Fatal("fig6 shape")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig7() })
	for i := 0; i < b.N; i++ {
		if len(l.Fig7().Steps) == 0 {
			b.Fatal("empty sequence")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig8() })
	for i := 0; i < b.N; i++ {
		r := l.Fig8()
		if len(r.Names) != 4 {
			b.Fatal("fig8 shape")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig9() })
	for i := 0; i < b.N; i++ {
		r := l.Fig9()
		if len(r.Algos) != 4 {
			b.Fatal("fig9 shape")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig10() })
	for i := 0; i < b.N; i++ {
		rs := l.Fig10()
		if len(rs) != 3 {
			b.Fatal("fig10 shape")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig11() })
	for i := 0; i < b.N; i++ {
		rs := l.Fig11()
		if len(rs) == 0 {
			b.Fatal("fig11 shape")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Fig12() })
	for i := 0; i < b.N; i++ {
		r := l.Fig12()
		if len(r.Recall) != 2 {
			b.Fatal("fig12 shape")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.TableIII() })
	for i := 0; i < b.N; i++ {
		r := l.TableIII()
		if r.SelectionMS <= 0 {
			b.Fatal("table3 overhead")
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.Headline() })
	for i := 0; i < b.N; i++ {
		h := l.Headline()
		if h.SavedAtFullRecall <= 0 {
			b.Fatal("no savings")
		}
	}
}

func BenchmarkAblationEND(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := l.AblationEND()
		if len(r.RewardWithEnd) == 0 {
			b.Fatal("ablation shape")
		}
	}
}

func BenchmarkAblationGamma(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := l.AblationGamma()
		if len(r.Gammas) == 0 {
			b.Fatal("ablation shape")
		}
	}
}

func BenchmarkAblationReward(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := l.AblationReward()
		if len(r.Shapes) != 3 {
			b.Fatal("ablation shape")
		}
	}
}

func BenchmarkExtService(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.ExtService() })
	for i := 0; i < b.N; i++ {
		r := l.ExtService()
		if len(r.ArrivalRates) == 0 {
			b.Fatal("service shape")
		}
	}
}

func BenchmarkExtGraph(b *testing.B) {
	l := warm(b, func(l *experiments.Lab) { l.ExtGraph() })
	for i := 0; i < b.N; i++ {
		r := l.ExtGraph()
		if len(r.Sweep.Policies) != 4 {
			b.Fatal("graph shape")
		}
	}
}

// --- Micro benchmarks of the core primitives -----------------------------

// BenchmarkAgentSelection measures the Table III row directly: one agent
// value prediction (the per-iteration scheduling overhead).
func BenchmarkAgentSelection(b *testing.B) {
	sys, err := New(Config{NumImages: 60, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := sys.TrainAgent(TrainOptions{Algorithm: DuelingDQN, Epochs: 1, Hidden: []int{256}})
	if err != nil {
		b.Fatal(err)
	}
	state := []int{3, 99, 450, 801, 1100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agent.PredictValues(state)
	}
}

// BenchmarkLabelDeadline measures one Algorithm 1 scheduling episode.
func BenchmarkLabelDeadline(b *testing.B) {
	sys, err := New(Config{NumImages: 60, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := sys.TrainAgent(TrainOptions{Algorithm: DuelingDQN, Epochs: 2, Hidden: []int{64}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Label(context.Background(), agent, sys.TestItem(i%sys.NumTestImages()), Budget{DeadlineSec: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelMemory measures one Algorithm 2 parallel episode.
func BenchmarkLabelMemory(b *testing.B) {
	sys, err := New(Config{NumImages: 60, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	agent, err := sys.TrainAgent(TrainOptions{Algorithm: DuelingDQN, Epochs: 2, Hidden: []int{64}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Label(context.Background(), agent, sys.TestItem(i%sys.NumTestImages()),
			Budget{DeadlineSec: 1, MemoryGB: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Server hot path ------------------------------------------------------

var (
	serveBenchOnce  sync.Once
	serveBenchSys   *System
	serveBenchAgent *Agent
)

// serveBench builds the shared system and agent for the server
// benchmarks once.
func serveBench(b *testing.B) (*System, *Agent) {
	b.Helper()
	serveBenchOnce.Do(func() {
		sys, err := New(Config{NumImages: 60, Seed: 1})
		if err != nil {
			panic(err)
		}
		agent, err := sys.TrainAgent(TrainOptions{
			Algorithm: DuelingDQN, Epochs: 2, Hidden: []int{64},
		})
		if err != nil {
			panic(err)
		}
		serveBenchSys, serveBenchAgent = sys, agent
	})
	return serveBenchSys, serveBenchAgent
}

// benchmarkServe measures submit→complete round trips against a running
// server: concurrent client goroutines submit and wait, so the reported
// per-op time is the end-to-end item latency under load at the given
// worker count. TimeScale is tiny so dispatch, policy, and accountant
// overhead dominate the (near-zero) model sleeps.
func benchmarkServe(b *testing.B, workers int) {
	sys, agent := serveBench(b)
	srv, err := sys.NewServer(agent, ServeConfig{
		Workers:     workers,
		DeadlineSec: 0.5,
		MemoryGB:    16,
		QueueCap:    4 * workers,
		TimeScale:   1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			img := int(next.Add(1)) % sys.NumTestImages()
			tk, err := srv.SubmitWait(context.Background(), sys.TestItem(img))
			if err != nil {
				b.Error(err)
				return
			}
			res, err := tk.Wait(context.Background())
			if err != nil {
				b.Error(err)
				return
			}
			if res.Recall < 0 {
				b.Error("bad recall")
				return
			}
		}
	})
	b.StopTimer()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServe1Worker(b *testing.B)  { benchmarkServe(b, 1) }
func BenchmarkServe4Workers(b *testing.B) { benchmarkServe(b, 4) }
func BenchmarkServe8Workers(b *testing.B) { benchmarkServe(b, 8) }

// benchmarkServeTelemetry is benchmarkServe with the telemetry switch
// exposed: the Uninstrumented/Instrumented pair measures what the obs
// layer costs per item. CI asserts the two stay within noise of each
// other; ReportAllocs pins the disabled path's zero-allocation promise
// (every obs call no-ops on nil before touching a clock or the heap).
func benchmarkServeTelemetry(b *testing.B, telemetry bool) {
	sys, agent := serveBench(b)
	srv, err := sys.NewServer(agent, ServeConfig{
		Workers:     4,
		DeadlineSec: 0.5,
		MemoryGB:    16,
		QueueCap:    16,
		TimeScale:   1e-6,
		Telemetry:   telemetry,
	})
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			img := int(next.Add(1)) % sys.NumTestImages()
			tk, err := srv.SubmitWait(context.Background(), sys.TestItem(img))
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	if telemetry {
		if st := srv.Stats(); len(st.Telemetry) == 0 {
			b.Fatal("instrumented run produced no telemetry")
		}
	}
}

func BenchmarkServeUninstrumented(b *testing.B) { benchmarkServeTelemetry(b, false) }
func BenchmarkServeInstrumented(b *testing.B)   { benchmarkServeTelemetry(b, true) }

// benchmarkServeBatching measures whole-trace throughput on the
// memory-bound hot-model workload where cross-item batching is the
// lever: a tight budget (one-ish footprint at a time), a short deadline
// concentrating every item on the same top-ratio models, and a pool of
// saturating clients. One bench iteration serves a wave of items; the
// items/s metric is the number to compare across the pair. TimeScale is
// 1e-3 — large enough that reservations are held for real, so the
// memory contention batching removes actually exists.
func benchmarkServeBatching(b *testing.B, batch int) {
	sys, agent := serveBench(b)
	srv, err := sys.NewServer(agent, ServeConfig{
		Workers:     8,
		DeadlineSec: 0.2,
		MemoryGB:    1,
		QueueCap:    64,
		TimeScale:   1e-3,
		BatchSize:   batch,
		BatchHoldMS: 600,
	})
	if err != nil {
		b.Fatal(err)
	}
	const wave = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tickets := make([]*ServeTicket, wave)
		for j := range tickets {
			img := (i*wave + j) % sys.NumTestImages()
			if tickets[j], err = srv.SubmitWait(context.Background(), sys.TestItem(img)); err != nil {
				b.Fatal(err)
			}
		}
		for _, tk := range tickets {
			if _, err := tk.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wave*b.N)/b.Elapsed().Seconds(), "items/s")
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	if batch > 0 {
		if st := srv.Stats(); st.Batches == 0 {
			b.Fatal("batching path never exercised")
		}
	}
}

func BenchmarkServeUnbatched(b *testing.B) { benchmarkServeBatching(b, 0) }
func BenchmarkServeBatched(b *testing.B)   { benchmarkServeBatching(b, 8) }

// BenchmarkSelectOverhead quantifies the Q-prediction memo: the same
// Algorithm-2 serving workload with and without the per-schedule cache,
// reporting the real per-item selection overhead (ServeStats.AvgSelectSec,
// the paper's Table III number) as select-ms/item. The parallel packer
// re-asks the policy at every launch of a scheduling point, so the
// cached variant's forward passes collapse to one per distinct labeling
// state.
func benchmarkSelectOverhead(b *testing.B, cached bool) {
	sys, agent := serveBench(b)
	policy := PolicyAlgorithm2
	if !cached {
		// The registry policy wraps the agent in the memo; this variant
		// bypasses it to measure the raw forward-pass cost.
		policy = Policy{name: "algorithm2-uncached", parallel: true, needsAgent: true,
			build: func(s *System, ag *Agent, _ uint64, _ *sched.SharedCache) sim.Policy {
				return sched.NewMemoryPacker(ag.cloneInner(), s.Zoo)
			}}
	}
	cfg := ServeConfig{
		Workers:     2,
		Policy:      policy,
		DeadlineSec: 0.8,
		MemoryGB:    8,
		TimeScale:   1e-6,
	}
	trace := ServeTrace{ArrivalRateHz: 1e6, Items: 40, Seed: 3}
	b.ResetTimer()
	var selectSec float64
	for i := 0; i < b.N; i++ {
		stats, err := sys.Serve(context.Background(), agent, cfg, trace, nil)
		if err != nil {
			b.Fatal(err)
		}
		selectSec += stats.AvgSelectSec
	}
	b.ReportMetric(selectSec/float64(b.N)*1e3, "select-ms/item")
}

func BenchmarkSelectOverheadCached(b *testing.B)   { benchmarkSelectOverhead(b, true) }
func BenchmarkSelectOverheadUncached(b *testing.B) { benchmarkSelectOverhead(b, false) }

// BenchmarkTrainEpoch measures one DRL training epoch.
func BenchmarkTrainEpoch(b *testing.B) {
	sys, err := New(Config{NumImages: 60, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TrainAgent(TrainOptions{
			Algorithm: DQN, Epochs: 1, Hidden: []int{64}, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

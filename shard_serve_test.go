package ams

import (
	"os"
	"path/filepath"
	"testing"

	"ams/internal/zoo"
)

// shardedCfg is the fast sharded serving configuration these tests
// share; Corpus is wired per test.
func shardedCfg(shards, workers int) ServeConfig {
	cfg := corpusCfg(workers)
	cfg.Shards = shards
	cfg.ShardPlacement = "affinity"
	cfg.ShardSteal = true
	return cfg
}

// TestShardedServerEndToEnd serves a mixed stream through a four-shard
// server over a segmented journal and checks the merged stats add up,
// every segment journal exists, and the per-shard breakdown is
// consistent with the merged view.
func TestShardedServerEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus.d")
	c, err := testSys.OpenCorpusDir(dir, 4, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := testSys.NewServer(testAgent, func() ServeConfig {
		cfg := shardedCfg(4, 8)
		cfg.Corpus = c
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(24, 42)
	var tks []*ServeTicket
	for i, it := range items {
		tk, err := srv.SubmitWait(bg, it)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tks = append(tks, tk)
	}
	// Built-in test items ride the same router as external ones.
	for i := 0; i < 8; i++ {
		tk, err := srv.SubmitWait(bg, testSys.TestItem(i))
		if err != nil {
			t.Fatalf("submit test item %d: %v", i, err)
		}
		tks = append(tks, tk)
	}
	for i, tk := range tks {
		if _, err := tk.Wait(bg); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats report %d shards (%d breakdowns), want 4", st.Shards, len(st.PerShard))
	}
	if st.Completed != int64(len(tks)) {
		t.Fatalf("completed %d of %d", st.Completed, len(tks))
	}
	var perShardItems int64
	for _, ps := range st.PerShard {
		perShardItems += ps.Completed
	}
	if perShardItems != st.Completed {
		t.Fatalf("per-shard completions sum to %d, merged says %d", perShardItems, st.Completed)
	}
	if st.RecallItems == 0 {
		t.Fatal("no recall-bearing item reached the merged stats")
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, "journal-"+string(rune('0'+i))+".log")); err != nil {
			t.Errorf("segment %d journal missing: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCorpusReplayZeroReruns is the sharded crash-recovery
// acceptance probe: a four-segment journaled run, reopened without a
// shard count (the manifest carries it), recovers every committed item
// across all segments without a single model re-run.
func TestShardedCorpusReplayZeroReruns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus.d")
	c, err := testSys.OpenCorpusDir(dir, 4, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(16, 7)
	original := make(map[string]*Result, len(items))
	func() {
		cfg := shardedCfg(4, 8)
		cfg.Corpus = c
		srv, err := testSys.NewServer(testAgent, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var tks []*ServeTicket
		for _, it := range items {
			tk, err := srv.SubmitWait(bg, it)
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		for _, tk := range tks {
			res, err := tk.Wait(bg)
			if err != nil {
				t.Fatal(err)
			}
			original[res.ItemID] = res
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Reopen with segments=0: the manifest remembers the partitioning.
	c2, err := testSys.OpenCorpusDir(dir, 0, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.Segments(); got != 4 {
		t.Fatalf("manifest reopen found %d segments, want 4", got)
	}
	before := zoo.Inferences()
	rep, err := testSys.ReplayCorpus(bg, testAgent, shardedCfg(4, 8), c2)
	if err != nil {
		t.Fatal(err)
	}
	if ran := zoo.Inferences() - before; ran != 0 {
		t.Fatalf("replaying committed items ran %d model inferences; want 0", ran)
	}
	if len(rep.Recovered) != len(items) || len(rep.Relabeled) != 0 {
		t.Fatalf("recovered %d, relabeled %d; want %d, 0", len(rep.Recovered), len(rep.Relabeled), len(items))
	}
	if len(rep.Segments) != 4 {
		t.Fatalf("replay reported %d segments, want 4", len(rep.Segments))
	}
	segSum := 0
	for _, sr := range rep.Segments {
		segSum += sr.Recovered + sr.Relabeled
	}
	if segSum != len(items) {
		t.Fatalf("per-segment counts sum to %d, want %d", segSum, len(items))
	}
	for _, res := range rep.Recovered {
		want, ok := original[res.ItemID]
		if !ok {
			t.Fatalf("recovered unknown item %q", res.ItemID)
		}
		if !sameResult(res, want) {
			t.Fatalf("item %q recovered differently:\n  was  %+v\n  got  %+v", res.ItemID, want, res)
		}
	}
}

// TestShardedConfigValidation exercises the sharded NewServer contract
// checks that have no single-shard counterpart.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := testSys.NewServer(testAgent, func() ServeConfig {
		cfg := shardedCfg(4, 2) // fewer workers than shards
		return cfg
	}()); err == nil {
		t.Error("NewServer accepted fewer workers than shards")
	}
	if _, err := testSys.NewServer(testAgent, ServeConfig{
		Workers: 4, Policy: PolicyAlgorithm1, DeadlineSec: 0.4, TimeScale: 0.001,
		Shards: 2, ShardPlacement: "zigzag",
	}); err == nil {
		t.Error("NewServer accepted an unknown placement")
	}
	// A sharded server needs a matching segment count.
	dir := filepath.Join(t.TempDir(), "corpus.d")
	c, err := testSys.OpenCorpusDir(dir, 2, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := testSys.NewServer(testAgent, func() ServeConfig {
		cfg := shardedCfg(4, 8)
		cfg.Corpus = c
		return cfg
	}()); err == nil {
		t.Error("NewServer accepted a 2-segment corpus for a 4-shard server")
	}
}

package ams

import (
	"strings"
	"testing"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []string{"algorithm1", "algorithm2", "qgreedy", "random"}
	if len(names) != len(want) {
		t.Fatalf("PolicyNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PolicyNames() = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		p, err := PolicyByName(n)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("policy %q reports name %q", n, p.Name())
		}
	}
}

func TestPolicyByNameUnknownErrors(t *testing.T) {
	for _, n := range []string{"", "nope", "Algorithm1", "ALGORITHM2"} {
		if _, err := PolicyByName(n); err == nil {
			t.Fatalf("PolicyByName(%q) accepted", n)
		} else if !strings.Contains(err.Error(), "unknown policy") {
			t.Fatalf("PolicyByName(%q) error %v does not name the problem", n, err)
		}
	}
}

func TestLabelWithValidation(t *testing.T) {
	// Zero Policy value is rejected.
	if _, err := testSys.LabelWith(bg, Policy{}, testAgent, testSys.TestItem(0), Budget{}); err == nil {
		t.Fatal("zero Policy accepted")
	}
	// Agent-driven policies need an agent.
	if _, err := testSys.LabelWith(bg, PolicyAlgorithm1, nil, testSys.TestItem(0), Budget{DeadlineSec: 0.5}); err == nil {
		t.Fatal("algorithm1 without an agent accepted")
	}
	// The random baseline does not.
	if _, err := testSys.LabelWith(bg, PolicyRandom, nil, testSys.TestItem(0), Budget{DeadlineSec: 0.5}); err != nil {
		t.Fatalf("random without an agent: %v", err)
	}
	// Budget validation is shared.
	if _, err := testSys.LabelWith(bg, PolicyAlgorithm2, testAgent, testSys.TestItem(0), Budget{MemoryGB: 8}); err == nil {
		t.Fatal("memory-without-deadline accepted")
	}
	if _, err := testSys.LabelWith(bg, PolicyAlgorithm1, testAgent, testSys.TestItem(0), Budget{DeadlineSec: -1}); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := testSys.LabelWith(bg, PolicyAlgorithm1, testAgent, testSys.TestItem(-1), Budget{}); err == nil {
		t.Fatal("bad image accepted")
	}
}

// TestLabelWithMatchesLabel: Label is LabelWith(DefaultPolicy(b)), so
// the two surfaces must agree exactly for every budget shape.
func TestLabelWithMatchesLabel(t *testing.T) {
	for _, b := range []Budget{
		{},
		{DeadlineSec: 0.5},
		{DeadlineSec: 0.8, MemoryGB: 8},
	} {
		got, err := testSys.LabelWith(bg, DefaultPolicy(b), testAgent, testSys.TestItem(1), b)
		if err != nil {
			t.Fatalf("LabelWith(%+v): %v", b, err)
		}
		want, err := testSys.Label(bg, testAgent, testSys.TestItem(1), b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Recall != want.Recall || got.TimeSec != want.TimeSec ||
			len(got.ModelsRun) != len(want.ModelsRun) {
			t.Fatalf("budget %+v: LabelWith %+v diverges from Label %+v", b, got, want)
		}
	}
}

// TestAnyPolicyUnderAnyBudget: the unified contract means every
// registry policy runs under every executor shape.
func TestAnyPolicyUnderAnyBudget(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p = p.WithSeed(7)
		for _, b := range []Budget{
			{},
			{DeadlineSec: 0.5},
			{DeadlineSec: 0.8, MemoryGB: 8},
		} {
			res, err := testSys.LabelWith(bg, p, testAgent, testSys.TestItem(2), b)
			if err != nil {
				t.Fatalf("policy %q budget %+v: %v", name, b, err)
			}
			if res.Recall < 0 || res.Recall > 1+1e-9 {
				t.Fatalf("policy %q budget %+v: recall %v", name, b, res.Recall)
			}
			if b.DeadlineSec > 0 && res.TimeSec > b.DeadlineSec+1e-9 {
				t.Fatalf("policy %q budget %+v: time %v over deadline", name, b, res.TimeSec)
			}
		}
	}
}

// TestServePolicyAlgorithm2MatchesSim: the server in Algorithm-2
// per-item mode must reproduce the sim.RunParallel schedule (exposed
// through LabelWith, which uses the same executor) for uncontended
// items — the sim-vs-real parity promise extended to the parallel mode.
func TestServePolicyAlgorithm2MatchesSim(t *testing.T) {
	b := Budget{DeadlineSec: 0.8, MemoryGB: 8}
	srv, err := testSys.NewServer(testAgent, ServeConfig{
		Workers:     1,
		DeadlineSec: b.DeadlineSec,
		MemoryGB:    b.MemoryGB,
		TimeScale:   0.001,
		Policy:      PolicyAlgorithm2,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	for img := 0; img < 8; img++ {
		tk, err := srv.Submit(testSys.TestItem(img))
		if err != nil {
			t.Fatal(err)
		}
		got := mustWait(t, tk) // sequential submits: the item runs uncontended
		want, err := testSys.LabelWith(bg, PolicyAlgorithm2, testAgent, testSys.TestItem(img), b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Recall != want.Recall {
			t.Fatalf("image %d: server recall %v diverges from sim %v", img, got.Recall, want.Recall)
		}
		if got.TimeSec != want.TimeSec {
			t.Fatalf("image %d: server makespan %v diverges from sim %v", img, got.TimeSec, want.TimeSec)
		}
		if len(got.ModelsRun) != len(want.ModelsRun) {
			t.Fatalf("image %d: server ran %v, sim %v", img, got.ModelsRun, want.ModelsRun)
		}
		for i := range want.ModelsRun {
			if got.ModelsRun[i] != want.ModelsRun[i] {
				t.Fatalf("image %d: schedule diverges at %d: %v vs %v",
					img, i, got.ModelsRun, want.ModelsRun)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if stats := srv.Stats(); stats.PeakMemMB <= 0 || stats.PeakMemMB > b.MemoryGB*1024+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, %v]", stats.PeakMemMB, b.MemoryGB*1024)
	}
}

func TestServePolicyValidation(t *testing.T) {
	// Algorithm 2 serving requires a memory budget.
	if _, err := testSys.NewServer(testAgent, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001, Policy: PolicyAlgorithm2,
	}); err == nil {
		t.Fatal("algorithm2 serving without a memory budget accepted")
	}
	// The zero policy defaults to algorithm1 and needs an agent.
	if _, err := testSys.NewServer(nil, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001,
	}); err == nil {
		t.Fatal("nil agent accepted for the default policy")
	}
	// The random policy serves without an agent.
	srv, err := testSys.NewServer(nil, ServeConfig{
		Workers: 1, DeadlineSec: 0.5, TimeScale: 0.001, Policy: PolicyRandom.WithSeed(3),
	})
	if err != nil {
		t.Fatalf("random policy without agent: %v", err)
	}
	tk, err := srv.Submit(testSys.TestItem(0))
	if err != nil {
		t.Fatal(err)
	}
	if res := mustWait(t, tk); res.Recall < 0 || res.Recall > 1+1e-9 {
		t.Fatalf("bad result %+v", res)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeReportsSelectOverhead: the real server must quantify the
// per-item policy selection overhead; the virtual-time sim models it as
// free.
func TestServeReportsSelectOverhead(t *testing.T) {
	cfg := serveCfg(2)
	trace := ServeTrace{ArrivalRateHz: 1000, Items: 20, Seed: 9}
	real, err := testSys.Serve(bg, testAgent, cfg, trace, nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if real.AvgSelectSec <= 0 {
		t.Fatalf("real AvgSelectSec %v, want > 0", real.AvgSelectSec)
	}
	sim, err := testSys.SimulateServe(testAgent, cfg, trace)
	if err != nil {
		t.Fatalf("SimulateServe: %v", err)
	}
	if sim.AvgSelectSec != 0 {
		t.Fatalf("sim AvgSelectSec %v, want 0", sim.AvgSelectSec)
	}
}

package ams

import (
	"context"
	"errors"
	"testing"
	"time"

	"ams/internal/oracle"
	"ams/internal/sched"
	"ams/internal/sim"
)

// externalTwin builds an external item carrying the same scene as
// held-out image i, with ground truth attached so recall is comparable —
// the evaluation-only configuration the parity test needs.
func externalTwin(i int) Item {
	scene := testSys.testStore.Scenes[i]
	ext := oracle.NewExternalItem(testSys.Zoo, scene)
	ext.SetTruth(oracle.DeriveTruth(testSys.Zoo, &scene))
	return Item{id: "twin", image: -1, ext: ext, valid: true}
}

// TestOnDemandParityWithOracle is the acceptance parity check: a
// test-split scene submitted through the on-demand ingestion path must
// yield bit-identical labels, executed-model order, and recall to the
// index-based oracle path, under every registry policy at fixed seeds
// and every budget shape.
func TestOnDemandParityWithOracle(t *testing.T) {
	budgets := []Budget{
		{},
		{DeadlineSec: 0.5},
		{DeadlineSec: 0.8, MemoryGB: 8},
	}
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p = p.WithSeed(17)
		for _, b := range budgets {
			for _, img := range []int{0, 3, 7} {
				want, err := testSys.LabelWith(bg, p, testAgent, testSys.TestItem(img), b)
				if err != nil {
					t.Fatalf("%s %+v oracle path: %v", name, b, err)
				}
				got, err := testSys.LabelWith(bg, p, testAgent, externalTwin(img), b)
				if err != nil {
					t.Fatalf("%s %+v on-demand path: %v", name, b, err)
				}
				if !got.HasRecall {
					t.Fatalf("%s %+v: truth-carrying external item lost its recall", name, b)
				}
				if got.Recall != want.Recall {
					t.Fatalf("%s %+v image %d: on-demand recall %v != oracle %v",
						name, b, img, got.Recall, want.Recall)
				}
				if got.TimeSec != want.TimeSec {
					t.Fatalf("%s %+v image %d: time %v != %v", name, b, img, got.TimeSec, want.TimeSec)
				}
				if len(got.ModelsRun) != len(want.ModelsRun) {
					t.Fatalf("%s %+v image %d: ran %v, oracle ran %v",
						name, b, img, got.ModelsRun, want.ModelsRun)
				}
				for i := range want.ModelsRun {
					if got.ModelsRun[i] != want.ModelsRun[i] {
						t.Fatalf("%s %+v image %d: schedule diverges at %d: %v vs %v",
							name, b, img, i, got.ModelsRun, want.ModelsRun)
					}
				}
				if len(got.Labels) != len(want.Labels) {
					t.Fatalf("%s %+v image %d: %d labels vs %d",
						name, b, img, len(got.Labels), len(want.Labels))
				}
				for i := range want.Labels {
					if got.Labels[i] != want.Labels[i] {
						t.Fatalf("%s %+v image %d: label %d differs: %+v vs %+v",
							name, b, img, i, got.Labels[i], want.Labels[i])
					}
				}
			}
		}
	}
}

// TestServerLabelsNeverSeenItemUnderMemoryBudget: an item the oracle has
// never seen is labeled end-to-end by the real server with the memory
// budget enforced — the production ingestion path.
func TestServerLabelsNeverSeenItemUnderMemoryBudget(t *testing.T) {
	cfg := serveCfg(2)
	cfg.MemoryGB = 6
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(6, 1001)
	var tickets []*ServeTicket
	for _, item := range items {
		tk, err := srv.SubmitWait(context.Background(), item)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		res := mustWait(t, tk)
		if res.HasRecall {
			t.Fatalf("item %d: external item claims ground-truth recall", i)
		}
		if res.Image != -1 {
			t.Fatalf("item %d: external item reports image index %d", i, res.Image)
		}
		if res.ItemID != items[i].ID() {
			t.Fatalf("item %d: ID %q, want %q", i, res.ItemID, items[i].ID())
		}
		if len(res.ModelsRun) == 0 {
			t.Fatalf("item %d: no models executed", i)
		}
		if res.TimeSec > cfg.DeadlineSec+1e-9 {
			t.Fatalf("item %d: schedule %v s over the %v s deadline", i, res.TimeSec, cfg.DeadlineSec)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	stats := srv.Stats()
	if stats.PeakMemMB <= 0 || stats.PeakMemMB > cfg.MemoryGB*1024+1e-9 {
		t.Fatalf("peak memory %v MB outside (0, %v]", stats.PeakMemMB, cfg.MemoryGB*1024)
	}
	if stats.RecallItems != 0 {
		t.Fatalf("external-only run averaged recall over %d items, want 0", stats.RecallItems)
	}
	if stats.Items != len(items) {
		t.Fatalf("completed %d items, want %d", stats.Items, len(items))
	}
}

// TestExternalItemMemoSharedAcrossSurfaces: an external item's lazily
// computed outputs are memoized on the item, so relabeling it (or
// labeling it on another surface) replays the memo — bit-identical
// results by construction.
func TestExternalItemMemoSharedAcrossSurfaces(t *testing.T) {
	item := testSys.GenerateItems(1, 55)[0]
	first, err := testSys.Label(bg, testAgent, item, Budget{DeadlineSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	second, err := testSys.Label(bg, testAgent, item, Budget{DeadlineSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.ModelsRun) != len(second.ModelsRun) || len(first.Labels) != len(second.Labels) {
		t.Fatalf("relabeling the same item diverged: %+v vs %+v", first, second)
	}
	for i := range first.Labels {
		if first.Labels[i] != second.Labels[i] {
			t.Fatalf("label %d differs across relabelings", i)
		}
	}
}

// --- SceneSpec composition -----------------------------------------------

func TestComposeItemValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec SceneSpec
	}{
		{"unknown place", SceneSpec{Place: "place/nowhere"}},
		{"wrong task", SceneSpec{Place: "object/dog"}},
		{"unknown object", SceneSpec{Objects: []string{"object/unobtainium"}}},
		{"emotion without face", SceneSpec{Emotion: "emotion/happy"}},
		{"gender without face", SceneSpec{Gender: "gender/female"}},
		{"action without person", SceneSpec{Action: "action/running"}},
		{"negative persons", SceneSpec{Persons: -1}},
	} {
		if _, err := testSys.ComposeItem(tc.spec); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestComposeItemLabelsEndToEnd: a composed scene's described content
// surfaces in the emitted labels.
func TestComposeItemLabelsEndToEnd(t *testing.T) {
	item, err := testSys.ComposeItem(SceneSpec{
		ID:    "composed",
		Place: "place/park",
		Dog:   "dog/husky",
		Seed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !item.External() || item.ID() != "composed" {
		t.Fatalf("composed item misdescribed: %+v", item)
	}
	res, err := testSys.Label(bg, testAgent, item, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRecall {
		t.Fatal("composed item claims ground-truth recall")
	}
	var sawDogish bool
	for _, l := range res.Labels {
		if l.Name == "object/dog" || l.Name == "dog/husky" {
			sawDogish = true
		}
	}
	if !sawDogish {
		t.Fatalf("no dog-related label surfaced from the composed scene: %v", res.Labels)
	}
}

func TestZeroItemRejectedEverywhere(t *testing.T) {
	if _, err := testSys.Label(bg, testAgent, Item{}, Budget{}); err == nil {
		t.Fatal("Label accepted the zero Item")
	}
	if _, _, err := testSys.LabelBatch(bg, testAgent, []Item{{}}, Budget{}, 1); err == nil {
		t.Fatal("LabelBatch accepted the zero Item")
	}
	srv, err := testSys.NewServer(testAgent, serveCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Submit(Item{}); err == nil {
		t.Fatal("Submit accepted the zero Item")
	}
}

// --- Context cancellation -------------------------------------------------

// cancelAfter cancels a context once n selections have been handed out,
// simulating a caller abandoning an item mid-schedule.
type cancelAfter struct {
	sim.Policy
	n      int
	cancel context.CancelFunc
}

func (p *cancelAfter) Next(tr *oracle.Tracker, c sim.Constraints) int {
	if p.n == 0 {
		p.cancel()
	}
	p.n--
	return p.Policy.Next(tr, c)
}

// TestLabelCancelledMidScheduleReturnsPartial: cancelling the context
// between selections aborts the remaining schedule; the models already
// run and their labels stand as the partial result, alongside ctx.Err().
func TestLabelCancelledMidScheduleReturnsPartial(t *testing.T) {
	full, err := testSys.Label(bg, testAgent, testSys.TestItem(0), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.ModelsRun) <= 3 {
		t.Fatalf("image 0 runs only %d models; test needs a longer schedule", len(full.ModelsRun))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const before = 2 // cancel fires while handing out the 3rd selection
	probe := Policy{name: "cancel-probe", needsAgent: true,
		build: func(s *System, agent *Agent, _ uint64, _ *sched.SharedCache) sim.Policy {
			return &cancelAfter{
				Policy: sched.NewQGreedy(agent.clonePredictor(nil), s.Zoo),
				n:      before,
				cancel: cancel,
			}
		}}
	res, err := testSys.LabelWith(ctx, probe, testAgent, testSys.TestItem(0), Budget{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	// The 3rd selection was already handed out when cancel fired; the
	// 4th ask is the first the wrapper blocks.
	if got := len(res.ModelsRun); got != before+1 {
		t.Fatalf("partial schedule ran %d models, want %d", got, before+1)
	}
	if len(res.Labels) == 0 {
		t.Fatal("partial result carries no labels")
	}
}

// TestLabelPreCancelledRunsNothing: an already-cancelled context labels
// nothing and reports the cancellation.
func TestLabelPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := testSys.Label(ctx, testAgent, testSys.TestItem(0), Budget{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.ModelsRun) != 0 {
		t.Fatalf("pre-cancelled Label ran %+v", res)
	}
}

// TestLabelBatchCancellationKeepsCompleted: cancelling a batch returns
// ctx.Err() with the already-labeled items intact and unstarted slots
// nil.
func TestLabelBatchCancellationKeepsCompleted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats, err := testSys.LabelBatch(ctx, testAgent, testSys.TestItems(0, 1, 2, 3), Budget{DeadlineSec: 0.5}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 4 {
		t.Fatalf("result slots %d, want 4 (nil for unstarted)", len(results))
	}
	if stats.Processed > 4 {
		t.Fatalf("processed %d of 4", stats.Processed)
	}
}

// TestSubmitWaitCancelledUnderBackpressure: a blocked SubmitWait whose
// context is cancelled returns ctx.Err(), the bounded queue untouched.
func TestSubmitWaitCancelledUnderBackpressure(t *testing.T) {
	cfg := ServeConfig{Workers: 1, DeadlineSec: 0.5, QueueCap: 1, TimeScale: 0.05}
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Occupy the worker and fill the one-slot queue.
	if _, err := srv.Submit(testSys.TestItem(3)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := srv.Submit(testSys.TestItem(3)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := srv.SubmitWait(ctx, testSys.TestItem(3)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitWait = %v, want context.DeadlineExceeded", err)
	}
}

// TestTicketWaitHonorsContext: Wait abandons on cancellation without
// losing the item — a later Wait still returns it.
func TestTicketWaitHonorsContext(t *testing.T) {
	cfg := ServeConfig{Workers: 1, DeadlineSec: 0.5, TimeScale: 0.05}
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tk, err := srv.Submit(testSys.TestItem(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := tk.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
	if res := mustWait(t, tk); len(res.ModelsRun) == 0 {
		t.Fatal("item lost after an abandoned Wait")
	}
}

// TestCloseDrainsInFlightExternalItem: Close during an in-flight
// external item completes it cleanly (run with -race).
func TestCloseDrainsInFlightExternalItem(t *testing.T) {
	cfg := ServeConfig{Workers: 2, DeadlineSec: 0.5, TimeScale: 0.02}
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := testSys.GenerateItems(4, 77)
	var tickets []*ServeTicket
	for _, item := range items {
		tk, err := srv.Submit(item)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// Close while schedules are mid-flight (each item sleeps ~10 ms).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		res := mustWait(t, tk)
		if len(res.ModelsRun) == 0 {
			t.Fatalf("item %d drained with no models executed", i)
		}
		if res.HasRecall {
			t.Fatalf("item %d: external item claims recall", i)
		}
	}
	if got := srv.Stats().Completed; got != int64(len(items)) {
		t.Fatalf("completed %d, want %d", got, len(items))
	}
}

// --- Results streaming ----------------------------------------------------

// TestServerResultsStream: every completion — oracle-backed and external
// alike — is delivered exactly once on the Results channel, which closes
// after Close.
func TestServerResultsStream(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, serveCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	results := srv.Results()
	if again := srv.Results(); again != results {
		t.Fatal("repeated Results() returned a different channel")
	}

	const testImgs = 6
	external := testSys.GenerateItems(3, 123)
	go func() {
		for i := 0; i < testImgs; i++ {
			if _, err := srv.SubmitWait(context.Background(), testSys.TestItem(i)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		for _, item := range external {
			if _, err := srv.SubmitWait(context.Background(), item); err != nil {
				t.Errorf("submit external: %v", err)
			}
		}
		srv.Close()
	}()

	var oracleBacked, externalSeen int
	for res := range results {
		if res.HasRecall {
			oracleBacked++
			if res.Image < 0 {
				t.Fatalf("oracle-backed result lost its image index: %+v", res)
			}
		} else {
			externalSeen++
			if res.Image != -1 || res.ItemID == "" {
				t.Fatalf("external result misdescribed: %+v", res)
			}
		}
	}
	if oracleBacked != testImgs || externalSeen != len(external) {
		t.Fatalf("stream delivered %d oracle-backed + %d external, want %d + %d",
			oracleBacked, externalSeen, testImgs, len(external))
	}
}

// TestResubmittedExternalItemReusesExecutorSlot: submitting one external
// item repeatedly — the backoff-retry pattern ErrQueueFull invites —
// must not grow the server's executor per attempt.
func TestResubmittedExternalItemReusesExecutorSlot(t *testing.T) {
	srv, err := testSys.NewServer(testAgent, serveCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	item := testSys.GenerateItems(1, 31)[0]
	base := srv.shards[0].ingest.NumItems()
	for i := 0; i < 5; i++ {
		tk, err := srv.SubmitWait(context.Background(), item)
		if err != nil {
			t.Fatal(err)
		}
		mustWait(t, tk)
	}
	if got := srv.shards[0].ingest.NumItems(); got != base+1 {
		t.Fatalf("5 submissions of one item grew the executor by %d slots, want 1", got-base)
	}
}

func TestServeRejectsEmptyTrace(t *testing.T) {
	if _, err := testSys.Serve(bg, testAgent, serveCfg(1), ServeTrace{}, nil); err == nil {
		t.Fatal("Serve accepted an empty trace")
	}
	if _, err := testSys.Serve(bg, testAgent, serveCfg(1), ServeTrace{ArrivalRateHz: 10}, nil); err == nil {
		t.Fatal("Serve accepted a trace without items")
	}
}

// TestServerResultsAbandonedConsumerDoesNotDeadlock: an abandoned
// subscription must not block workers or Close, and its undelivered
// buffer is bounded — the oldest results are shed and counted once the
// consumer falls a stats window behind.
func TestServerResultsAbandonedConsumerDoesNotDeadlock(t *testing.T) {
	cfg := serveCfg(2)
	cfg.StatsWindow = 4 // tiny window so the shed path actually runs
	srv, err := testSys.NewServer(testAgent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Results() // subscribe and never read
	for i := 0; i < 12; i++ {
		tk, err := srv.SubmitWait(context.Background(), testSys.TestItem(i))
		if err != nil {
			t.Fatal(err)
		}
		mustWait(t, tk) // completions pile up behind the dead consumer
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked behind an abandoned Results consumer")
	}
	if srv.Stats().ResultsDropped == 0 {
		t.Fatal("no results shed despite a consumer 12 items behind a 4-item window")
	}
}

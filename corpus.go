package ams

import (
	"context"
	"fmt"

	"ams/internal/corpus"
	"ams/internal/zoo"
)

// ErrCorpusFull is the corpus's admission backpressure signal: the
// server already holds CorpusOptions.MaxResident resident items. Like
// ErrQueueFull it means "back off and retry"; SubmitWait blocks through
// it instead, waiting for an eviction to free a slot.
var ErrCorpusFull = corpus.ErrFull

// CorpusOptions parameterizes OpenCorpus.
type CorpusOptions struct {
	// MaxResident, when positive, bounds how many ingested items may
	// hold memoized outputs in memory at once. New admissions past the
	// watermark are refused (Submit returns ErrCorpusFull) or blocked
	// (SubmitWait) until committed items are evicted. Zero = unbounded.
	MaxResident int
	// SnapshotEvery, when positive, compacts the journal into a
	// snapshot automatically after every N completed items. Zero
	// disables automatic snapshots (Server.Checkpoint still works).
	SnapshotEvery int
}

// CorpusStats is a point-in-time summary of a corpus.
type CorpusStats struct {
	Items          int   // ingested items the corpus tracks
	Resident       int   // items whose memoized outputs occupy memory
	Committed      int   // items with a journaled completion
	Evicted        int64 // memo reclamations since open
	JournalBytes   int64 // current journal size on disk
	JournalRecords int64 // journal records appended since open
	Snapshots      int64 // compacting snapshots written since open
}

// Corpus is a durable, evictable collection of ingested items: the
// persistence layer between "a server that labels external items" and a
// production server on an unbounded stream. Wire one into a server via
// ServeConfig.Corpus and every ingested item's lifecycle becomes
// journaled and bounded:
//
//	admit    — the scene lands in the write-ahead journal before the
//	           item reaches a worker
//	memoize  — each (item, model) output is journaled as inference runs
//	commit   — the completed schedule is journaled; the result a ticket
//	           or the Results stream delivers is captured at this point
//	evict    — once committed and no in-flight schedule holds the item,
//	           its memoized outputs are reclaimed from memory (the
//	           journal keeps the durable copy)
//	snapshot — Server.Checkpoint (or SnapshotEvery) compacts journal +
//	           previous snapshot into one blob and truncates the journal
//	replay   — OpenCorpus on an existing journal recovers the corpus:
//	           System.ReplayCorpus re-serves committed items
//	           bit-identically from their persisted memos (no model
//	           re-runs) and relabels only uncommitted ones
//
// A Corpus is safe for concurrent use but belongs to one server at a
// time. Close it after the server that uses it has closed.
type Corpus struct {
	sys   *System
	inner *corpus.Corpus
}

// OpenCorpus opens (or creates) a durable ingestion corpus journaled at
// path. An existing journal (plus its path+".snap" snapshot, if any) is
// loaded and its torn tail — the signature of a crash mid-write —
// discarded, so reopening after a kill at an arbitrary byte offset
// always yields every record that was fully written.
//
// The journal stores scenes and model outputs, so reopening requires a
// System with the same model zoo (any System does: the zoo is a pure
// function of the vocabulary); dataset size and split do not matter.
func (s *System) OpenCorpus(path string, opts CorpusOptions) (*Corpus, error) {
	inner, err := corpus.Open(s.Zoo, path, corpus.Options{
		MaxResident:   opts.MaxResident,
		SnapshotEvery: opts.SnapshotEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return &Corpus{sys: s, inner: inner}, nil
}

// Stats returns a point-in-time summary of the corpus.
func (c *Corpus) Stats() CorpusStats {
	st := c.inner.Stats()
	return CorpusStats{
		Items:          st.Items,
		Resident:       st.Resident,
		Committed:      st.Committed,
		Evicted:        st.Evicted,
		JournalBytes:   st.JournalBytes,
		JournalRecords: st.JournalRecords,
		Snapshots:      st.Snapshots,
	}
}

// Snapshot compacts the corpus's journal into a snapshot immediately —
// what Server.Checkpoint calls. Safe while a server is running.
func (c *Corpus) Snapshot() error { return c.inner.Snapshot() }

// Close syncs and closes the journal. Close the server using the corpus
// first; a journal write error that occurred during serving surfaces
// here if no admission already reported it.
func (c *Corpus) Close() error { return c.inner.Close() }

// ReplayReport is the outcome of System.ReplayCorpus.
type ReplayReport struct {
	// Recovered holds the items whose completion was committed to the
	// journal before the crash, rebuilt bit-identically from their
	// persisted memos — no model inference re-runs for these.
	Recovered []*Result
	// Relabeled holds the items that were admitted but not committed:
	// they are labeled afresh through a server, with journaled partial
	// outputs short-circuiting the models that already ran.
	Relabeled []*Result
}

// ReplayCorpus re-serves a reopened corpus — the crash-recovery path.
// Committed items are rebuilt directly from their journaled schedules
// and memoized outputs (bit-identical to the results delivered before
// the crash, zero model executions); uncommitted items are submitted to
// a fresh server built from cfg (cfg.Corpus is forced to c), so their
// schedules re-run only the models whose outputs never reached the
// journal. When every item is committed no server is built and agent
// may be nil.
//
// Results appear in admission (journal) order within each list.
func (s *System) ReplayCorpus(ctx context.Context, agent *Agent, cfg ServeConfig, c *Corpus) (*ReplayReport, error) {
	if c == nil {
		return nil, fmt.Errorf("ams: nil corpus")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	states := c.inner.States()
	report := &ReplayReport{}
	var pending []corpus.ItemState
	// Recover committed items before any server exists: building a
	// server reclaims committed memos, and recovery must read them.
	for _, st := range states {
		if !st.Committed {
			pending = append(pending, st)
			continue
		}
		item := c.inner.Item(st.Seq)
		names := make([]string, len(st.Executed))
		outs := make([]zoo.Output, len(st.Executed))
		for i, m := range st.Executed {
			names[i] = s.Zoo.Models[m].Name
			outs[i] = item.Output(m) // memoized from the journal
		}
		pub := Item{id: st.Tag, image: -1, valid: true}
		report.Recovered = append(report.Recovered,
			s.assembleResult(pub, names, outs, st.ScheduleMS, 0, false))
	}
	if len(pending) == 0 {
		c.inner.ReclaimCommitted()
		return report, nil
	}

	cfg.Corpus = c
	srv, err := s.NewServer(agent, cfg)
	if err != nil {
		return report, err
	}
	tickets := make(map[int]*ServeTicket, len(pending))
	var submitErr error
	for _, st := range pending {
		pub := Item{id: st.Tag, image: -1, valid: true}
		tk, err := srv.submitIndex(ctx, srv.src.Index(st.Seq), pub)
		if err != nil {
			submitErr = err
			break
		}
		tickets[st.Seq] = tk
	}
	if err := srv.Close(); err != nil && submitErr == nil {
		submitErr = err
	}
	for _, st := range pending {
		tk, ok := tickets[st.Seq]
		if !ok {
			continue
		}
		res, err := tk.Wait(ctx)
		if err != nil && submitErr == nil {
			submitErr = err
		}
		if res != nil {
			report.Relabeled = append(report.Relabeled, res)
		}
	}
	return report, submitErr
}

package ams

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ams/internal/corpus"
	"ams/internal/zoo"
)

// ErrCorpusFull is the corpus's admission backpressure signal: the
// server already holds CorpusOptions.MaxResident resident items. Like
// ErrQueueFull it means "back off and retry"; SubmitWait blocks through
// it instead, waiting for an eviction to free a slot.
var ErrCorpusFull = corpus.ErrFull

// CorpusOptions parameterizes OpenCorpus and OpenCorpusDir.
type CorpusOptions struct {
	// MaxResident, when positive, bounds how many ingested items may
	// hold memoized outputs in memory at once (per journal segment on a
	// segmented corpus). New admissions past the watermark are refused
	// (Submit returns ErrCorpusFull) or blocked (SubmitWait) until
	// committed items are evicted. Zero = unbounded.
	MaxResident int
	// SnapshotEvery, when positive, compacts the journal into a
	// snapshot automatically after every N completed items. Zero
	// disables automatic snapshots (Server.Checkpoint still works).
	SnapshotEvery int
	// SyncEveryN and SyncEveryMS turn on group-commit fsync: a
	// background flusher syncs the journal once N records accumulate
	// and at least every SyncEveryMS milliseconds, without ever
	// blocking a worker on the flush. Both zero (the default) syncs
	// only on Close and snapshots — a process crash still loses
	// nothing, but a machine-level power loss may lose the journal
	// tail.
	SyncEveryN  int
	SyncEveryMS float64
}

// CorpusStats is a point-in-time summary of a corpus, summed across its
// journal segments.
type CorpusStats struct {
	Segments       int   // journal segments (1 unless OpenCorpusDir)
	Items          int   // ingested items the corpus tracks
	Resident       int   // items whose memoized outputs occupy memory
	Committed      int   // items with a journaled completion
	Evicted        int64 // memo reclamations since open
	JournalBytes   int64 // current journal size on disk
	JournalRecords int64 // journal records appended since open
	Snapshots      int64 // compacting snapshots written since open
	Syncs          int64 // group-commit fsync batches since open
	Unsynced       int64 // journal records not yet fsynced
}

// Corpus is a durable, evictable collection of ingested items: the
// persistence layer between "a server that labels external items" and a
// production server on an unbounded stream. Wire one into a server via
// ServeConfig.Corpus and every ingested item's lifecycle becomes
// journaled and bounded:
//
//	admit    — the scene lands in the write-ahead journal before the
//	           item reaches a worker
//	memoize  — each (item, model) output is journaled as inference runs
//	commit   — the completed schedule is journaled; the result a ticket
//	           or the Results stream delivers is captured at this point
//	evict    — once committed and no in-flight schedule holds the item,
//	           its memoized outputs are reclaimed from memory (the
//	           journal keeps the durable copy)
//	snapshot — Server.Checkpoint (or SnapshotEvery) compacts journal +
//	           previous snapshot into one blob and truncates the journal
//	replay   — OpenCorpus on an existing journal recovers the corpus:
//	           System.ReplayCorpus re-serves committed items
//	           bit-identically from their persisted memos (no model
//	           re-runs) and relabels only uncommitted ones
//
// A corpus holds one journal segment per server shard (OpenCorpusDir):
// each shard journals into its own file, so segment writers never
// contend, and crash replay fans out across segments in parallel.
//
// A Corpus is safe for concurrent use but belongs to one server at a
// time. Close it after the server that uses it has closed.
type Corpus struct {
	sys  *System
	segs []*corpus.Corpus
}

// OpenCorpus opens (or creates) a durable single-segment ingestion
// corpus journaled at path. An existing journal (plus its path+".snap"
// snapshot, if any) is loaded and its torn tail — the signature of a
// crash mid-write — discarded, so reopening after a kill at an
// arbitrary byte offset always yields every record that was fully
// written.
//
// The journal stores scenes and model outputs, so reopening requires a
// System with the same model zoo (any System does: the zoo is a pure
// function of the vocabulary); dataset size and split do not matter.
func (s *System) OpenCorpus(path string, opts CorpusOptions) (*Corpus, error) {
	inner, err := corpus.Open(s.Zoo, path, opts.internal())
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return &Corpus{sys: s, segs: []*corpus.Corpus{inner}}, nil
}

// OpenCorpusDir opens (or creates) a segmented corpus under dir: one
// journal file per server shard (journal-<shard>.log) plus a manifest
// recording the segment count. Pass segments == 0 to reopen an existing
// directory with whatever count it was created with — the crash-replay
// path, which opens (and so recovers) all segments in parallel. Options
// apply to each segment individually.
func (s *System) OpenCorpusDir(dir string, segments int, opts CorpusOptions) (*Corpus, error) {
	segs, err := corpus.OpenDir(s.Zoo, dir, segments, opts.internal())
	if err != nil {
		return nil, fmt.Errorf("ams: %w", err)
	}
	return &Corpus{sys: s, segs: segs}, nil
}

func (o CorpusOptions) internal() corpus.Options {
	return corpus.Options{
		MaxResident:   o.MaxResident,
		SnapshotEvery: o.SnapshotEvery,
		SyncEveryN:    o.SyncEveryN,
		SyncEveryMS:   o.SyncEveryMS,
	}
}

// Segments returns the corpus's journal segment count — the shard count
// a server using it must be configured with (1 means unsharded).
func (c *Corpus) Segments() int { return len(c.segs) }

// Stats returns a point-in-time summary, summed across segments.
func (c *Corpus) Stats() CorpusStats {
	total := CorpusStats{Segments: len(c.segs)}
	for _, seg := range c.segs {
		st := seg.Stats()
		total.Items += st.Items
		total.Resident += st.Resident
		total.Committed += st.Committed
		total.Evicted += st.Evicted
		total.JournalBytes += st.JournalBytes
		total.JournalRecords += st.JournalRecords
		total.Snapshots += st.Snapshots
		total.Syncs += st.Syncs
		total.Unsynced += st.Unsynced
	}
	return total
}

// Snapshot compacts every journal segment into its snapshot — what
// Server.Checkpoint calls. Segments compact concurrently; the first
// error is returned. Safe while a server is running: each segment's
// compaction is atomic against its own writers, so a sharded server's
// checkpoint is consistent per segment.
func (c *Corpus) Snapshot() error {
	errs := make([]error, len(c.segs))
	var wg sync.WaitGroup
	for i, seg := range c.segs {
		wg.Add(1)
		go func(i int, seg *corpus.Corpus) {
			defer wg.Done()
			errs[i] = seg.Snapshot()
		}(i, seg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("ams: segment %d: %w", i, err)
		}
	}
	return nil
}

// Close syncs and closes every journal segment. Close the server using
// the corpus first; a journal write error that occurred during serving
// surfaces here if no admission already reported it.
func (c *Corpus) Close() error {
	var firstErr error
	for i, seg := range c.segs {
		if err := seg.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ams: segment %d: %w", i, err)
		}
	}
	return firstErr
}

// SegmentReplay is one journal segment's slice of a replay.
type SegmentReplay struct {
	Segment   int
	Recovered int // committed items rebuilt from persisted memos
	Relabeled int // uncommitted items labeled afresh
}

// ReplayReport is the outcome of System.ReplayCorpus.
type ReplayReport struct {
	// Recovered holds the items whose completion was committed to the
	// journal before the crash, rebuilt bit-identically from their
	// persisted memos — no model inference re-runs for these. The count
	// merges all journal segments (per-segment counts in Segments).
	Recovered []*Result
	// Relabeled holds the items that were admitted but not committed:
	// they are labeled afresh through a server, with journaled partial
	// outputs short-circuiting the models that already ran.
	Relabeled []*Result
	// Segments breaks the replay out per journal segment, in segment
	// order (one entry per segment, zero counts included).
	Segments []SegmentReplay
}

// ReplayCorpus re-serves a reopened corpus — the crash-recovery path.
// Committed items are rebuilt directly from their journaled schedules
// and memoized outputs (bit-identical to the results delivered before
// the crash, zero model executions); uncommitted items are submitted to
// a fresh server built from cfg (cfg.Corpus is forced to c, and on a
// multi-segment corpus cfg.Shards is forced to the segment count, with
// each pending item pinned to its own segment's shard), so their
// schedules re-run only the models whose outputs never reached the
// journal. Segments recover concurrently. When every item is committed
// no server is built and agent may be nil.
//
// Results appear in admission (journal) order within each segment,
// segments in order within each list.
func (s *System) ReplayCorpus(ctx context.Context, agent *Agent, cfg ServeConfig, c *Corpus) (*ReplayReport, error) {
	if c == nil {
		return nil, fmt.Errorf("ams: nil corpus")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nseg := len(c.segs)
	report := &ReplayReport{Segments: make([]SegmentReplay, nseg)}
	type pendingItem struct {
		seg int
		st  corpus.ItemState
	}
	recovered := make([][]*Result, nseg)
	pendingBySeg := make([][]corpus.ItemState, nseg)
	// Recover committed items before any server exists — building a
	// server reclaims committed memos, and recovery must read them —
	// with one goroutine per segment: journal segments exist so replay
	// work fans out.
	var wg sync.WaitGroup
	for i := range c.segs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seg := c.segs[i]
			for _, st := range seg.States() {
				if !st.Committed {
					pendingBySeg[i] = append(pendingBySeg[i], st)
					continue
				}
				item := seg.Item(st.Seq)
				names := make([]string, len(st.Executed))
				outs := make([]zoo.Output, len(st.Executed))
				for j, m := range st.Executed {
					names[j] = s.Zoo.Models[m].Name
					outs[j] = item.Output(m) // memoized from the journal
				}
				pub := Item{id: st.Tag, image: -1, valid: true}
				recovered[i] = append(recovered[i],
					s.assembleResult(pub, names, outs, st.ScheduleMS, 0, false))
			}
		}(i)
	}
	wg.Wait()
	var pending []pendingItem
	for i := range c.segs {
		report.Recovered = append(report.Recovered, recovered[i]...)
		report.Segments[i] = SegmentReplay{Segment: i, Recovered: len(recovered[i])}
		for _, st := range pendingBySeg[i] {
			pending = append(pending, pendingItem{seg: i, st: st})
		}
	}
	if len(pending) == 0 {
		for _, seg := range c.segs {
			seg.ReclaimCommitted()
		}
		return report, nil
	}

	cfg.Corpus = c
	if nseg > 1 {
		cfg.Shards = nseg
	}
	srv, err := s.NewServer(agent, cfg)
	if err != nil {
		return report, err
	}
	type issued struct {
		pendingItem
		tk *ServeTicket
	}
	var tickets []issued
	var submitErr error
	for _, p := range pending {
		pub := Item{id: p.st.Tag, image: -1, valid: true}
		tk, err := srv.submitSeg(ctx, p.seg, srv.shards[p.seg].src.Index(p.st.Seq), pub)
		if err != nil {
			submitErr = err
			break
		}
		tickets = append(tickets, issued{pendingItem: p, tk: tk})
	}
	if err := srv.Close(); err != nil && submitErr == nil {
		submitErr = err
	}
	// Deliver relabeled results in (segment, journal) order.
	sort.SliceStable(tickets, func(a, b int) bool {
		if tickets[a].seg != tickets[b].seg {
			return tickets[a].seg < tickets[b].seg
		}
		return tickets[a].st.Seq < tickets[b].st.Seq
	})
	for _, is := range tickets {
		res, err := is.tk.Wait(ctx)
		if err != nil && submitErr == nil {
			submitErr = err
		}
		if res != nil {
			report.Relabeled = append(report.Relabeled, res)
			report.Segments[is.seg].Relabeled++
		}
	}
	return report, submitErr
}
